#include "parallel/pdect.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <thread>

#include "util/thread_annotations.h"
#include "util/timer.h"

namespace ngd {

namespace {

/// One PDect work unit. Three kinds, discriminated by depth/slice:
///   - seed chunk (depth < 0): candidates [chunk_begin, chunk_end) of the
///     rule's start label among fragment `home`'s OWNED nodes;
///   - forwarded partial match (depth >= 0, no slice): binding expanded
///     through step `depth-1`, shipped to the owner of step `depth`'s
///     anchor;
///   - slice unit (depth >= 0, slice set): same, but scanning only
///     [slice_begin, slice_end) of the anchor adjacency (hybrid split).
/// Units always expand against fragment `home`'s CSR; a thief reads the
/// victim's fragment, paid for by the steal message.
struct PUnit {
  int32_t ngd = -1;
  int32_t home = 0;
  int32_t depth = -1;
  uint32_t chunk_begin = 0;
  uint32_t chunk_end = 0;
  int32_t slice_begin = -1;
  int32_t slice_end = -1;
  bool y_false = false;
  uint32_t y_ready = 0;
  Binding binding;
};

class FragmentDectEngine {
 public:
  FragmentDectEngine(const NgdSet& sigma, const PDectOptions& opts,
                     const FragmentRuntime& rt)
      : sigma_(sigma),
        opts_(opts),
        rt_(rt),
        p_(rt.num_fragments()),
        pool_(p_, &metrics_, opts.enable_steal && p_ > 1,
              opts.max_queue_depth),
        local_(p_) {
    // Streaming results: each worker-local set spills under its own
    // prefix with an equal share of the budget; the merged result set
    // adopts all worker segments and keeps spilling under the main
    // prefix (EnableSpill before the merge in Run()).
    if (opts.spill != nullptr) {
      VioSpillOptions wopts = *opts.spill;
      wopts.budget_bytes = opts.spill->budget_bytes / static_cast<size_t>(p_);
      for (int i = 0; i < p_; ++i) {
        wopts.path_prefix = opts.spill->path_prefix + ".w" + std::to_string(i);
        local_[i].EnableSpill(wopts);
      }
    }
    // Cancellation: every worker polls one shared token so a deadline
    // tripped by any worker (or an external Cancel) stops all of them.
    // When only a deadline is given the engine owns the broadcast token.
    if (opts.cancel != nullptr || opts.deadline.armed()) {
      token_ = opts.cancel != nullptr ? opts.cancel : &owned_token_;
      checks_.reserve(p_);
      for (int i = 0; i < p_; ++i) checks_.emplace_back(token_, opts.deadline);
    }
    pending_ = std::make_unique<std::atomic<uint32_t>[]>(sigma.size());
    for (size_t r = 0; r < sigma.size(); ++r) {
      pending_[r].store(0, std::memory_order_relaxed);
    }
  }

  PDectResult Run(const GraphAccessor& global) {
    metrics_.replicated_nodes.fetch_add(rt_.total_halo_nodes(),
                                        std::memory_order_relaxed);

    // One start node + plan per rule, chosen against the global graph so
    // every fragment agrees (owner-computes seeding needs one well-defined
    // owner per match).
    start_of_.resize(sigma_.size());
    start_label_.resize(sigma_.size());
    plans_.reserve(sigma_.size());
    for (size_t r = 0; r < sigma_.size(); ++r) {
      const Pattern& pattern = sigma_[r].pattern();
      start_of_[r] = ChooseStartNode(pattern, global);
      start_label_[r] = pattern.node(start_of_[r]).label;
      plans_.push_back(BuildMatchPlan(pattern, {start_of_[r]}, &sigma_[r].X(),
                                      &sigma_[r].Y()));
    }

    // Owner-computes seeding: fragment f expands exactly the candidates
    // it owns, in seed_chunk-sized units (the steal granularity).
    const size_t chunk = std::max<size_t>(1, opts_.seed_chunk);
    for (int f = 0; f < p_; ++f) {
      const FragmentSnapshot& frag = rt_.fragment(f);
      for (size_t r = 0; r < sigma_.size(); ++r) {
        const size_t count = frag.candidates.Count(start_label_[r]);
        for (size_t b = 0; b < count; b += chunk) {
          PUnit u;
          u.ngd = static_cast<int32_t>(r);
          u.home = f;
          u.chunk_begin = static_cast<uint32_t>(b);
          u.chunk_end = static_cast<uint32_t>(std::min(b + chunk, count));
          pending_[r].fetch_add(1, std::memory_order_relaxed);
          pool_.Seed(f, std::move(u));
        }
      }
    }

    // Each worker hands its local set to the guarded merge list on its
    // own thread as it exits the pool — an explicit critical section the
    // thread-safety analysis can check, instead of an implicit reliance
    // on join-order visibility of local_[i].
    pool_.Run([this](int worker, PUnit& unit) { ProcessUnit(worker, unit); },
              []() {}, token_, [this](int worker) { RetireWorker(worker); });

    PDectResult result;
    // Owner-computes seeding keeps per-worker sets globally disjoint, so
    // the merge is a rehash-free arena concatenation. Enabling spill on
    // the result first keeps the merged set under the caller's prefix and
    // full budget (rather than inheriting worker 0's ".w0" share).
    if (opts_.spill != nullptr) result.vio.EnableSpill(*opts_.spill);
    {
      MutexLock lock(&merge_mu_);
      // Worker completion order is nondeterministic; merging in worker
      // order keeps the result arena layout identical run to run.
      std::sort(finished_.begin(), finished_.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (auto& f : finished_) {
        result.vio.MergeDisjointUnchecked(std::move(f.second));
      }
      finished_.clear();
    }
    result.crossing_edges = rt_.partition().crossing_edges;
    result.fragments = p_;
    result.metrics = SnapshotOf(metrics_);
    // Per-rule completion: a unit retires its pending count only when it
    // was processed to the end, so any unit drained unprocessed by the
    // cancelled pool — or aborted mid-expansion — leaves its rule marked
    // incomplete.
    DetectRunInfo local_info;
    DetectRunInfo* info =
        opts_.run_info != nullptr ? opts_.run_info : &local_info;
    info->StartFull(sigma_.size());
    for (size_t r = 0; r < sigma_.size(); ++r) {
      if (pending_[r].load(std::memory_order_relaxed) != 0) {
        info->rule_completed[r] = 0;
        info->truncated = true;
      }
    }
    result.truncated = info->truncated;
    return result;
  }

 private:
  void ProcessUnit(int worker, PUnit& unit) {
    CancelCheck* check = token_ != nullptr ? &checks_[worker] : nullptr;
    if (check != nullptr && check->ShouldStop()) {
      return;  // dropped: the unit's pending count keeps its rule incomplete
    }
    metrics_.work_units.fetch_add(1, std::memory_order_relaxed);
    const FragmentSnapshot& frag = rt_.fragment(unit.home);
    const GraphAccessor acc(*frag.csr);
    uint64_t halo_scans = 0;
    if (unit.depth < 0) {
      const Ngd& ngd = sigma_[unit.ngd];
      const int start = start_of_[unit.ngd];
      GraphSnapshot::IdRange range =
          frag.candidates.Range(start_label_[unit.ngd]);
      Binding binding(ngd.pattern().NumNodes(), kInvalidNode);
      const uint32_t end =
          std::min(unit.chunk_end, static_cast<uint32_t>(range.size()));
      for (uint32_t i = unit.chunk_begin; i < end; ++i) {
        if (check != nullptr && check->ShouldStop()) break;
        std::fill(binding.begin(), binding.end(), kInvalidNode);
        binding[start] = range.ptr[i];
        bool y_false = false;
        uint32_t y_ready = 0;
        if (!ValidateSeed(unit.ngd, acc, binding, &y_false, &y_ready)) {
          continue;
        }
        Expand(worker, unit.ngd, frag, acc, 0, binding, y_false, y_ready, -1,
               -1, &halo_scans, check);
      }
    } else {
      Expand(worker, unit.ngd, frag, acc, unit.depth, unit.binding,
             unit.y_false, unit.y_ready, unit.slice_begin, unit.slice_end,
             &halo_scans, check);
    }
    if (halo_scans > 0) {
      metrics_.messages.fetch_add(halo_scans, std::memory_order_relaxed);
    }
    if (check == nullptr || !check->Stopped()) {
      // Fully processed (spawned children carry their own pending counts).
      pending_[unit.ngd].fetch_sub(1, std::memory_order_relaxed);
    }
  }

  /// Seed edges (self-loops on the start node) and seed-ready literals;
  /// the candidate's label is right by FragmentCandidates construction.
  bool ValidateSeed(int r, const GraphAccessor& acc, const Binding& binding,
                    bool* y_false, uint32_t* y_ready) const {
    const Ngd& ngd = sigma_[r];
    const MatchPlan& plan = plans_[r];
    const Pattern& pattern = ngd.pattern();
    for (int ce : plan.seed_check_edges) {
      const PatternEdge& pe = pattern.edge(ce);
      if (!acc.HasEdge(binding[pe.src], binding[pe.dst], pe.label)) {
        return false;
      }
    }
    for (int i : plan.seed_ready_x) {
      if (EvalLiteral(acc, ngd.X()[i], binding) == Truth::kFalse) {
        return false;
      }
    }
    for (int i : plan.seed_ready_y) {
      ++*y_ready;
      if (EvalLiteral(acc, ngd.Y()[i], binding) == Truth::kFalse) {
        *y_false = true;
      }
    }
    if (!*y_false && *y_ready == ngd.Y().size()) return false;
    return true;
  }

  /// Recursive plan walk from step `depth` with in-place binding + undo.
  /// slice_begin >= 0 restricts the entry step's anchor scan (slice
  /// units); deeper steps always scan fully or re-split.
  void Expand(int worker, int r, const FragmentSnapshot& frag,
              const GraphAccessor& acc, int depth, Binding& binding,
              bool y_false, uint32_t y_ready, int64_t slice_begin,
              int64_t slice_end, uint64_t* halo_scans, CancelCheck* check) {
    if (check != nullptr && check->ShouldStop()) return;
    const Ngd& ngd = sigma_[r];
    const MatchPlan& plan = plans_[r];
    if (static_cast<size_t>(depth) == plan.steps.size()) {
      // A full-depth branch has every X literal admitted and Y violated
      // (the all-Y-true case is pruned when the last Y literal binds).
      // Owner-computes seeding plus disjoint slice splits make the
      // per-worker sets globally duplicate-free, so the append skips
      // the hash probe.
      local_[worker].AppendUnchecked(r, binding.data(), binding.size());
      return;
    }
    const Pattern& pattern = ngd.pattern();
    const ExpansionStep& step = plan.steps[depth];
    const PatternEdge& anchor_edge = pattern.edge(step.anchor_edge);
    const NodeId anchor = binding[step.anchor_node];
    const size_t seq_len =
        acc.NeighborSeqLen(anchor, step.anchor_out, anchor_edge.label);
    const bool anchor_owned = frag.Owns(anchor);

    size_t begin = 0;
    size_t end = seq_len;
    if (slice_begin >= 0) {
      begin = static_cast<size_t>(slice_begin);
      end = std::min(static_cast<size_t>(slice_end), seq_len);
    } else if (p_ > 1 && seq_len > 0) {
      // Hybrid cost model (paper §6.3 / §7): sequential |adj| vs
      // C·(k+1) + |adj|/p for k already-matched pattern nodes.
      const double k = static_cast<double>(plan.seeds.size() + depth);
      const double seq_cost = static_cast<double>(seq_len);
      const double par_cost =
          opts_.latency_c * (k + 1.0) + seq_cost / static_cast<double>(p_);
      if (!anchor_owned && opts_.enable_forward &&
          seq_len >= opts_.min_forward_adjacency && par_cost < seq_cost) {
        // Boundary-crossing match: ship the k+1 bound nodes to the
        // anchor's owner, which scans its own (owned) adjacency. Exact:
        // all nodes of any completion are within d_Σ of the anchor, so
        // they lie inside the owner's members ∪ halo.
        PUnit u;
        u.ngd = r;
        u.home = frag.halo_owner[HaloIndexOf(frag, anchor)];
        u.depth = depth;
        u.y_false = y_false;
        u.y_ready = y_ready;
        u.binding = binding;
        pending_[r].fetch_add(1, std::memory_order_relaxed);
        pool_.Forward(worker, u.home, std::move(u));
        return;
      }
      if (opts_.enable_split && seq_len >= opts_.min_split_adjacency &&
          par_cost < seq_cost) {
        // Work-unit splitting: broadcast p slice units of the anchor
        // adjacency (p messages, as in PIncDect).
        metrics_.splits.fetch_add(1, std::memory_order_relaxed);
        metrics_.messages.fetch_add(p_, std::memory_order_relaxed);
        const size_t share = (seq_len + p_ - 1) / p_;
        for (int i = 0; i < p_; ++i) {
          const size_t b = static_cast<size_t>(i) * share;
          if (b >= seq_len) break;
          PUnit s;
          s.ngd = r;
          s.home = frag.fragment_id;
          s.depth = depth;
          s.slice_begin = static_cast<int32_t>(b);
          s.slice_end =
              static_cast<int32_t>(std::min(b + share, seq_len));
          s.y_false = y_false;
          s.y_ready = y_ready;
          s.binding = binding;
          pending_[r].fetch_add(1, std::memory_order_relaxed);
          pool_.Spawn(worker, i, std::move(s));
        }
        return;
      }
    }
    if (!anchor_owned) ++*halo_scans;  // local read of a replica

    const LabelId want_label = pattern.node(step.node).label;
    acc.ForEachNeighborSlice(
        anchor, step.anchor_out, anchor_edge.label, begin, end,
        [&](NodeId cand) {
          // Bounded response even on a hub anchor's long adjacency scan.
          if (check != nullptr && check->ShouldStop()) return false;
          if (!acc.NodeMatchesLabel(cand, want_label)) return true;
          for (int ce : step.check_edges) {
            const PatternEdge& pe = pattern.edge(ce);
            const NodeId s = pe.src == step.node ? cand : binding[pe.src];
            const NodeId d = pe.dst == step.node ? cand : binding[pe.dst];
            if (!acc.HasEdge(s, d, pe.label)) return true;
          }
          binding[step.node] = cand;
          bool child_y_false = y_false;
          uint32_t child_y_ready = y_ready;
          bool prune = false;
          for (int i : step.ready_x) {
            if (EvalLiteral(acc, ngd.X()[i], binding) == Truth::kFalse) {
              prune = true;
              break;
            }
          }
          if (!prune) {
            for (int i : step.ready_y) {
              ++child_y_ready;
              if (EvalLiteral(acc, ngd.Y()[i], binding) == Truth::kFalse) {
                child_y_false = true;
              }
            }
            if (!child_y_false && child_y_ready == ngd.Y().size()) {
              prune = true;
            }
          }
          if (!prune) {
            Expand(worker, r, frag, acc, depth + 1, binding, child_y_false,
                   child_y_ready, -1, -1, halo_scans, check);
          }
          binding[step.node] = kInvalidNode;
          return true;
        });
  }

  /// Index of halo node v in frag.halo (v MUST be a halo node: callers
  /// check !frag.Owns(v), and every non-owned node reachable during
  /// expansion is replicated — see parallel/fragment.h).
  static size_t HaloIndexOf(const FragmentSnapshot& frag, NodeId v) {
    const auto it = std::lower_bound(frag.halo.begin(), frag.halo.end(), v);
    return static_cast<size_t>(it - frag.halo.begin());
  }

  /// Pool-exit handoff: worker `w` moves its finished local set into the
  /// guarded merge list. local_[w] is written only by worker w's thread
  /// (backpressured inline runs execute on the producing worker, so
  /// confinement holds), making the move race-free by construction.
  void RetireWorker(int worker) NGD_EXCLUDES(merge_mu_) {
    MutexLock lock(&merge_mu_);
    finished_.emplace_back(worker, std::move(local_[worker]));
  }

  const NgdSet& sigma_;
  const PDectOptions& opts_;
  const FragmentRuntime& rt_;
  const int p_;
  ClusterMetrics metrics_;
  WorkStealingPool<PUnit> pool_;
  /// Worker-local result sets: slot i is thread-confined to worker i
  /// while the pool runs, then handed off via RetireWorker.
  std::vector<VioSet> local_;
  Mutex merge_mu_;
  std::vector<std::pair<int, VioSet>> finished_ NGD_GUARDED_BY(merge_mu_);
  std::vector<int> start_of_;
  std::vector<LabelId> start_label_;
  std::vector<MatchPlan> plans_;
  /// Cancellation state: null token_ = not cancellable (zero-option runs
  /// never touch the checks). Deadline trips broadcast through the token.
  CancelToken owned_token_;
  CancelToken* token_ = nullptr;
  std::vector<CancelCheck> checks_;  // one per worker
  /// Per-rule outstanding work units; nonzero after the pool drains means
  /// some unit of that rule was dropped or aborted → rule incomplete.
  std::unique_ptr<std::atomic<uint32_t>[]> pending_;
};

/// The legacy shared-memory path: static owner-computes seed assignment
/// over one caller-supplied CSR snapshot every worker reads. No halos, no
/// communication accounting (a shared-memory machine has neither).
PDectResult SharedSnapshotPDect(const Graph& g, const NgdSet& sigma,
                                const PDectOptions& opts) {
  WallTimer timer;
  const int p = std::max(1, opts.num_processors);
  Partition partition = PartitionGraph(g, p, opts.view);
  const GraphAccessor acc(*opts.snapshot);

  struct Seed {
    int ngd_index;
    int start;
    NodeId node;
  };
  std::vector<std::vector<Seed>> assigned(p);
  std::vector<int> start_of(sigma.size());
  for (size_t f = 0; f < sigma.size(); ++f) {
    const Pattern& pattern = sigma[f].pattern();
    const int start = ChooseStartNode(pattern, acc);
    start_of[f] = start;
    ForEachCandidate(acc, pattern.node(start).label, [&](NodeId v) {
      assigned[partition.fragment_of[v]].push_back(
          Seed{static_cast<int>(f), start, v});
      return true;
    });
  }

  std::vector<MatchPlan> plans;
  plans.reserve(sigma.size());
  for (size_t f = 0; f < sigma.size(); ++f) {
    plans.push_back(BuildMatchPlan(sigma[f].pattern(), {start_of[f]},
                                   &sigma[f].X(), &sigma[f].Y()));
  }

  // Cancellation: one shared broadcast token, one CancelCheck per worker.
  CancelToken owned_token;
  CancelToken* token = opts.cancel;
  if (token == nullptr && opts.deadline.armed()) token = &owned_token;
  auto rule_ok = std::make_unique<std::atomic<uint8_t>[]>(sigma.size());
  for (size_t r = 0; r < sigma.size(); ++r) {
    rule_ok[r].store(1, std::memory_order_relaxed);
  }

  ClusterMetrics metrics;
  std::vector<VioSet> local(p);
  // Finished worker sets, handed off under a real lock at worker exit
  // (see FragmentDectEngine::RetireWorker for the rationale).
  struct MergeState {
    Mutex mu;
    std::vector<std::pair<int, VioSet>> finished NGD_GUARDED_BY(mu);
  } merge;
  if (opts.spill != nullptr) {
    VioSpillOptions wopts = *opts.spill;
    wopts.budget_bytes = opts.spill->budget_bytes / static_cast<size_t>(p);
    for (int i = 0; i < p; ++i) {
      wopts.path_prefix = opts.spill->path_prefix + ".w" + std::to_string(i);
      local[i].EnableSpill(wopts);
    }
  }
  std::vector<std::thread> workers;
  workers.reserve(p);
  for (int i = 0; i < p; ++i) {
    workers.emplace_back([&, i]() {
      CancelCheck check(token, opts.deadline);
      CancelCheck* cancel = check.active() ? &check : nullptr;
      for (size_t s = 0; s < assigned[i].size(); ++s) {
        if (cancel != nullptr && cancel->ShouldStop()) {
          // Unprocessed seeds leave their rules incomplete.
          for (size_t rest = s; rest < assigned[i].size(); ++rest) {
            rule_ok[assigned[i][rest].ngd_index].store(
                0, std::memory_order_relaxed);
          }
          break;
        }
        const Seed& seed = assigned[i][s];
        metrics.work_units.fetch_add(1, std::memory_order_relaxed);
        const Ngd& ngd = sigma[seed.ngd_index];
        SearchConfig cfg;
        cfg.graph = &g;
        cfg.snapshot = opts.snapshot;
        cfg.pattern = &ngd.pattern();
        cfg.x = &ngd.X();
        cfg.y = &ngd.Y();
        cfg.view = opts.view;
        cfg.find_violations = true;
        cfg.cancel = cancel;
        Binding binding(ngd.pattern().NumNodes(), kInvalidNode);
        binding[seed.start] = seed.node;
        RunSeededSearch(cfg, plans[seed.ngd_index], &binding,
                        [&](const Binding& match) {
                          // Each (rule, seed) pair is assigned to exactly
                          // one worker and seeded expansion never repeats
                          // a binding, so the append skips the hash probe.
                          local[i].AppendUnchecked(seed.ngd_index,
                                                   match.data(), match.size());
                          return true;
                        });
        if (cancel != nullptr && cancel->Stopped()) {
          rule_ok[seed.ngd_index].store(0, std::memory_order_relaxed);
        }
      }
      MutexLock lock(&merge.mu);
      merge.finished.emplace_back(i, std::move(local[i]));
    });
  }
  for (auto& w : workers) w.join();

  PDectResult result;
  // Per-worker sets are globally disjoint (seed ownership), so the merge
  // is a rehash-free arena concatenation (result spill first — see the
  // fragment-native path).
  if (opts.spill != nullptr) result.vio.EnableSpill(*opts.spill);
  {
    MutexLock lock(&merge.mu);
    std::sort(merge.finished.begin(), merge.finished.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& f : merge.finished) {
      result.vio.MergeDisjointUnchecked(std::move(f.second));
    }
  }
  result.crossing_edges = partition.crossing_edges;
  result.fragments = p;
  result.metrics = SnapshotOf(metrics);
  result.elapsed_seconds = timer.ElapsedSeconds();
  DetectRunInfo local_info;
  DetectRunInfo* info = opts.run_info != nullptr ? opts.run_info : &local_info;
  info->StartFull(sigma.size());
  for (size_t r = 0; r < sigma.size(); ++r) {
    if (rule_ok[r].load(std::memory_order_relaxed) == 0) {
      info->rule_completed[r] = 0;
      info->truncated = true;
    }
  }
  result.truncated = info->truncated;
  return result;
}

}  // namespace

PDectResult PDect(const Graph& g, const NgdSet& sigma,
                  const PDectOptions& opts) {
  // Σ-optimizer wiring: minimize before fragment seeding, so dropped
  // rules never spawn work units. elapsed_seconds of the re-entry covers
  // the parallel detection itself; the (cached, amortized) minimization
  // cost is the caller's setup, as with runtime builds.
  PDectOptions inner;
  MinimizedSigma m;
  if (BeginMinimizedDetection(sigma, g.schema(), opts, &inner, &m)) {
    DetectRunInfo inner_info;
    inner.run_info = &inner_info;
    PDectResult result = PDect(g, m.sigma, inner);
    result.vio = RemapViolations(std::move(result.vio), m.report.kept);
    if (opts.run_info != nullptr) {
      RemapRunInfo(inner_info, m.report, sigma.size(), opts.run_info);
    }
    return result;
  }

  if (opts.snapshot != nullptr) return SharedSnapshotPDect(g, sigma, opts);

  WallTimer timer;
  const int p = std::max(1, opts.num_processors);
  const int d_sigma = sigma.MaxDiameter();

  // Reuse a caller-supplied runtime when it matches; otherwise fragment
  // here (the clock includes it — a cold start really pays it; callers
  // that care pre-build and pass opts.runtime).
  std::optional<FragmentRuntime> owned_rt;
  const FragmentRuntime* rt = opts.runtime;
  if (rt == nullptr || rt->num_fragments() != p || rt->view() != opts.view ||
      rt->halo_hops() < d_sigma) {
    owned_rt.emplace(g, p, opts.view, d_sigma);
    rt = &*owned_rt;
  }

  FragmentDectEngine engine(sigma, opts, *rt);
  PDectResult result = engine.Run(GraphAccessor(g, opts.view));
  result.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ngd
