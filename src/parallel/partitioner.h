// Streaming edge-cut graph partitioner (the METIS stand-in, DESIGN.md §3).
//
// PIncDect/PDect work on a graph fragmented across p processors (paper §7
// fragments with METIS). The algorithms only depend on fragment locality
// — which nodes are co-resident and how many edges cross fragments — so a
// balanced streaming partitioner preserves their behaviour. We implement
// Linear Deterministic Greedy (LDG): nodes are streamed in id order and
// placed in the fragment holding most of their already-placed neighbors,
// weighted by remaining capacity.

#ifndef NGD_PARALLEL_PARTITIONER_H_
#define NGD_PARALLEL_PARTITIONER_H_

#include <vector>

#include "graph/graph.h"

namespace ngd {

struct PartitionResult {
  std::vector<int> fragment_of;  ///< node id -> fragment [0, p)
  std::vector<size_t> fragment_sizes;
  size_t crossing_edges = 0;  ///< edges with endpoints in two fragments
};

/// Partitions nodes of `g` (kNew view) into `p` balanced fragments.
PartitionResult PartitionGraph(const Graph& g, int p);

}  // namespace ngd

#endif  // NGD_PARALLEL_PARTITIONER_H_
