// Streaming edge-cut graph partitioner (the METIS stand-in, DESIGN.md §3).
//
// PIncDect/PDect work on a graph fragmented across p processors (paper §7
// fragments with METIS). The algorithms only depend on fragment locality
// — which nodes are co-resident and how many edges cross fragments — so a
// balanced streaming partitioner preserves their behaviour. We implement
// Linear Deterministic Greedy (LDG), label- and degree-aware:
//
//   - nodes are streamed in descending-degree order (ties by id), so hubs
//     are spread across fragments before their spokes arrive and the
//     spokes then cluster around them;
//   - each node goes to the fragment holding most of its already-placed
//     neighbors, weighted by remaining capacity, with a small affinity
//     bonus for fragments already rich in the node's label — candidate
//     scans C(u) are label-indexed, so co-locating a label keeps seed
//     enumeration fragment-local for the rules that select it;
//   - when every fragment is at capacity the node falls back to the
//     least-loaded fragment (overflow must not skew onto fragment 0).
//
// The result carries full ownership structure: fragment_of, per-fragment
// member lists, and per-fragment boundary sets (owned nodes with at least
// one crossing edge) — the seeds of the halo replication that
// FragmentSnapshot performs (parallel/fragment.h).

#ifndef NGD_PARALLEL_PARTITIONER_H_
#define NGD_PARALLEL_PARTITIONER_H_

#include <vector>

#include "graph/graph.h"

namespace ngd {

struct PartitionOptions {
  /// Per-fragment node capacity; 0 = auto (|V|/p plus one node of slack,
  /// always feasible). Tighter explicit capacities force overflow and
  /// exercise the least-loaded fallback.
  double capacity = 0.0;
  /// Weight of the label co-location bonus relative to one placed
  /// neighbor. 0 disables label awareness.
  double label_affinity = 0.25;
  /// Stream nodes in descending-degree order (ties by id). Off = id
  /// order, the classic LDG stream.
  bool degree_order = true;
};

struct Partition {
  int num_fragments = 1;
  std::vector<int> fragment_of;  ///< node id -> fragment [0, p)
  std::vector<size_t> fragment_sizes;
  /// Per-fragment owned node ids, ascending.
  std::vector<std::vector<NodeId>> members;
  /// Per-fragment boundary set: owned nodes with >= 1 edge (either
  /// direction, in `view`) to a node owned elsewhere; ascending.
  std::vector<std::vector<NodeId>> boundary;
  size_t crossing_edges = 0;  ///< edges with endpoints in two fragments
};

/// Partitions the nodes of `view` of `g` into `p` balanced fragments.
/// Deterministic: same (g, p, view, opts) -> same Partition.
Partition PartitionGraph(const Graph& g, int p,
                         GraphView view = GraphView::kNew,
                         const PartitionOptions& opts = {});

}  // namespace ngd

#endif  // NGD_PARALLEL_PARTITIONER_H_
