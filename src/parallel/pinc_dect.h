// PIncDect: parallel incremental detection, parallel scalable relative to
// IncDect (paper §6.3, Theorem 6).
//
// Pipeline (mirroring Fig. 3):
//   1. Enumerate update pivots (same PivotTask machinery as IncDect).
//   2. Extract the candidate neighborhood N_C(ΔG, Σ) — the union of
//      d_Σ-balls around pivot endpoints — and "replicate" it at all p
//      processors (simulated; replication volume is metered).
//   3. Partition the initial pivots evenly into per-processor workloads
//      BVio_i. Adjacency lists are logically partitioned: a split work
//      unit carries the slice [begin, end) of the anchor's adjacency that
//      the receiving processor owns (its partial copy v.adj_i).
//   4. Each processor expands partial solutions: candidate filtering with
//      the HYBRID cost model — expand locally when
//          |adj| <= C·(k+1) + |adj|/p
//      and otherwise broadcast p slice units (work-unit splitting).
//      Verification of the remaining pattern edges is O(1) per edge here
//      (hash edge index), so it is never worth splitting — a documented
//      deviation from the paper, whose verification scans adjacency lists.
//   5. A balancer thread wakes every `intvl` ms, computes the skewness
//      ||BVio_i|| / avg ||BVio_t||, and moves work from processors above
//      η (= 3) to processors below η' (= 0.7).
//
// Ablation variants (Fig 4): PIncDect_ns (no split), PIncDect_nb (no
// balance), PIncDect_NO (neither) are the same engine with flags off.

#ifndef NGD_PARALLEL_PINC_DECT_H_
#define NGD_PARALLEL_PINC_DECT_H_

#include "detect/inc_dect.h"
#include "parallel/cluster.h"
#include "parallel/work_unit.h"

namespace ngd {

struct PIncDectOptions {
  int num_processors = 4;
  /// Backend selection, exactly as IncDectOptions: kNever = live overlay
  /// graph (the oracle/baseline), kAlways = DeltaView over the base
  /// snapshot, kAuto = cost model (or an already-provided base_snapshot).
  SnapshotMode snapshot_mode = SnapshotMode::kAuto;
  /// Optional pre-built snapshot of the base graph G (GraphView::kOld),
  /// shared read-only by all simulated processors and reused across
  /// batches by callers that maintain one per commit epoch.
  const GraphSnapshot* base_snapshot = nullptr;
  /// AffectedArea prefilter: skip every pivot task of a rule whose
  /// d_Q-ball around ΔG lacks candidates for some pattern-node label.
  bool affected_area_prefilter = true;
  /// Communication-latency constant C of the cost model (paper fixes 60).
  double latency_c = 60.0;
  /// Balancer wake-up interval in milliseconds (paper: 45 s at cluster
  /// scale; milliseconds at this scale — DESIGN.md §3).
  int balance_interval_ms = 45;
  bool enable_split = true;    ///< off = PIncDect_ns
  bool enable_balance = true;  ///< off = PIncDect_nb
  double skew_threshold = 3.0;      ///< η
  double receiver_threshold = 0.7;  ///< η'
  /// Adjacency lists shorter than this never split (guard against
  /// degenerate splits of tiny lists).
  size_t min_split_adjacency = 8;
  /// Idle processors steal work units across queues (off by default: the
  /// paper's PIncDect balances by skewness only; stealing is the
  /// fragment-runtime extension, metered separately in `steals`).
  bool enable_steal = false;
  /// Optional fragment runtime (parallel/cluster.h): when set and built
  /// with num_fragments == num_processors, each pivot's initial work unit
  /// is placed on the processor owning the pivot's source node —
  /// fragment-affine placement instead of round-robin. N_C stays
  /// replicated everywhere, so any processor can still run any unit.
  const FragmentRuntime* runtime = nullptr;
  /// Σ-optimizer (reason/sigma_optimizer.h): kAlways/kAuto enumerate
  /// pivots, extract N_C and partition workloads over the implication-
  /// minimized rule set only, remapping ΔVio indices back to Σ. kNever
  /// (default) is the oracle.
  MinimizeMode minimize_sigma = MinimizeMode::kNever;
  SigmaOptimizerOptions sigma_optimizer = {};
  /// Graceful degradation (see DectOptions / PDectOptions): a tripped
  /// token or expired deadline stops the workers and drains the queues;
  /// the call returns the ΔVio found so far with `truncated` set, and
  /// `run_info` marks a rule complete only when every one of its pivot
  /// work units (including splits and spawned children) finished.
  CancelToken* cancel = nullptr;
  Deadline deadline = {};
  DetectRunInfo* run_info = nullptr;
  /// Streaming results: worker-local ΔVio sets spill under
  /// "<path_prefix>.add.w<i>" / "<path_prefix>.rem.w<i>" with
  /// budget_bytes/p each; the merged delta keeps spilling under
  /// "<path_prefix>.add" / "<path_prefix>.rem" (see DectOptions::spill
  /// and detect/vio_stream.h).
  const VioSpillOptions* spill = nullptr;
  /// Producer backpressure (see PDectOptions::max_queue_depth): mid-run
  /// split broadcasts and child spawns targeting a queue at or past this
  /// depth execute inline on the producing worker. 0 disables; initial
  /// pivot seeding is exempt.
  size_t max_queue_depth = 4096;
};

struct PIncDectResult {
  DeltaVio delta;
  /// True iff the run was cut short and some rule's ΔVio is incomplete.
  bool truncated = false;
  double elapsed_seconds = 0.0;
  size_t candidate_neighborhood_nodes = 0;
  uint64_t messages = 0;
  uint64_t replicated_nodes = 0;
  uint64_t work_units = 0;
  uint64_t splits = 0;
  uint64_t balance_moves = 0;
  uint64_t steals = 0;
};

/// Computes ΔVio(Σ, G, ΔG) with p simulated processors. `g` must carry ΔG
/// as its pending overlay.
StatusOr<PIncDectResult> PIncDect(const Graph& g, const NgdSet& sigma,
                                  const UpdateBatch& batch,
                                  const PIncDectOptions& opts);

}  // namespace ngd

#endif  // NGD_PARALLEL_PINC_DECT_H_
