#include "parallel/cluster.h"

// WorkQueue is header-only; ClusterMetrics is an aggregate. This TU exists
// so the ngd_parallel library always has at least the runtime symbols the
// linker expects when templates are not instantiated elsewhere.

namespace ngd {}  // namespace ngd
