#include "parallel/cluster.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace ngd {

namespace {

/// Builds all p FragmentSnapshots, one thread per fragment — the "deploy
/// the fragments" phase of a cluster, parallel by construction.
std::vector<FragmentSnapshot> BuildAllFragments(const Graph& g,
                                                const Partition& part,
                                                GraphView view,
                                                int halo_hops) {
  const int p = part.num_fragments;
  std::vector<FragmentSnapshot> fragments(p);
  if (p == 1) {
    fragments[0] = BuildFragmentSnapshot(g, part, 0, view, halo_hops);
    return fragments;
  }
  std::vector<std::thread> builders;
  builders.reserve(p);
  for (int f = 0; f < p; ++f) {
    builders.emplace_back([&, f]() {
      fragments[f] = BuildFragmentSnapshot(g, part, f, view, halo_hops);
    });
  }
  for (auto& b : builders) b.join();
  return fragments;
}

std::string FragmentPath(const std::string& prefix, int f) {
  return prefix + ".f" + std::to_string(f) + ".ngdfrag";
}

}  // namespace

FragmentRuntime::FragmentRuntime(const Graph& g, int p, GraphView view,
                                 int halo_hops,
                                 const PartitionOptions& popts)
    : FragmentRuntime(g, PartitionGraph(g, std::max(1, p), view, popts), view,
                      halo_hops) {}

FragmentRuntime::FragmentRuntime(const Graph& g, Partition part,
                                 GraphView view, int halo_hops)
    : view_(view),
      halo_hops_(std::max(0, halo_hops)),
      partition_(std::move(part)) {
  fragments_ = BuildAllFragments(g, partition_, view_, halo_hops_);
}

uint64_t FragmentRuntime::total_halo_nodes() const {
  uint64_t total = 0;
  for (const FragmentSnapshot& f : fragments_) total += f.halo.size();
  return total;
}

Status FragmentRuntime::Save(const std::string& prefix) const {
  for (int f = 0; f < num_fragments(); ++f) {
    NGD_RETURN_IF_ERROR(SaveFragmentFile(fragments_[f],
                                         FragmentPath(prefix, f)));
  }
  return Status::OK();
}

StatusOr<FragmentRuntime> FragmentRuntime::Load(const std::string& prefix,
                                                int p, SchemaPtr schema) {
  if (p < 1) return Status::InvalidArgument("fragment count must be >= 1");
  FragmentRuntime runtime;
  runtime.fragments_.reserve(p);
  for (int f = 0; f < p; ++f) {
    NGD_ASSIGN_OR_RETURN(FragmentSnapshot frag,
                         LoadFragmentFile(FragmentPath(prefix, f), schema));
    if (frag.num_fragments != p || frag.fragment_id != f) {
      return Status::Corruption("fragment file " + FragmentPath(prefix, f) +
                                " does not belong to a " + std::to_string(p) +
                                "-fragment cluster at position " +
                                std::to_string(f));
    }
    runtime.fragments_.push_back(std::move(frag));
  }

  // Cross-fragment consistency: same halo depth, same view, same id
  // space, and the member lists partition it exactly.
  const FragmentSnapshot& first = runtime.fragments_[0];
  const size_t n = first.csr->NumNodes();
  runtime.halo_hops_ = first.halo_hops;
  runtime.view_ = first.csr->view();
  Partition& part = runtime.partition_;
  part.num_fragments = p;
  part.fragment_of.assign(n, -1);
  part.fragment_sizes.assign(p, 0);
  part.members.resize(p);
  part.boundary.resize(p);
  for (int f = 0; f < p; ++f) {
    const FragmentSnapshot& frag = runtime.fragments_[f];
    if (frag.halo_hops != runtime.halo_hops_ ||
        frag.csr->view() != runtime.view_ || frag.csr->NumNodes() != n) {
      return Status::Corruption(
          "fragment files disagree on halo depth, view, or node count");
    }
    for (NodeId v : frag.members) {
      if (part.fragment_of[v] != -1) {
        return Status::Corruption("node " + std::to_string(v) +
                                  " is owned by two fragments");
      }
      part.fragment_of[v] = f;
    }
    part.members[f] = frag.members;
    part.fragment_sizes[f] = frag.members.size();
  }
  for (NodeId v = 0; v < n; ++v) {
    if (part.fragment_of[v] == -1) {
      return Status::Corruption("node " + std::to_string(v) +
                                " is owned by no fragment");
    }
  }

  // Partition stats from the fragment CSRs. Every crossing edge (u, v)
  // with u owned here has v within one hop of the boundary, so it is
  // present in the owner's induced CSR whenever halo_hops >= 1 — the scan
  // is then exact. (halo_hops == 0 keeps no cross edges; stats stay 0.)
  for (int f = 0; f < p; ++f) {
    const FragmentSnapshot& frag = runtime.fragments_[f];
    for (NodeId v : frag.members) {
      bool crossing = false;
      frag.csr->ForEachOutEdge(v, [&](LabelId, NodeId w) {
        if (!frag.Owns(w)) {
          ++part.crossing_edges;
          crossing = true;
        }
      });
      if (!crossing) {
        frag.csr->ForEachInEdge(v, [&](LabelId, NodeId w) {
          if (!frag.Owns(w)) crossing = true;
        });
      }
      if (crossing) part.boundary[f].push_back(v);
    }
  }
  return runtime;
}

}  // namespace ngd
