#include "parallel/fragment.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <fstream>

#include "graph/accessor.h"
#include "graph/graph_io.h"
#include "graph/snapshot_io.h"
#include "util/failpoint.h"
#include "util/fs.h"

namespace ngd {

namespace {

// Same FNV-1a 64 as the snapshot container (snapshot_io.cc); the
// embedded snapshot image carries its own per-section checksums, this
// covers the fragment-specific ownership arrays.
uint64_t Fnv1a(const void* data, size_t n,
               uint64_t h = 1469598103934665603ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

#pragma pack(push, 1)
struct FragmentHeader {
  char magic[8];
  uint32_t version;
  uint32_t endian;  // 0x01020304 written on a little-endian host
  int32_t fragment_id;
  int32_t num_fragments;
  int32_t halo_hops;
  uint32_t reserved;
  uint64_t member_count;
  uint64_t halo_count;
  uint64_t snapshot_bytes;
  uint64_t members_checksum;
  uint64_t halo_checksum;
  uint64_t owner_checksum;
};
#pragma pack(pop)
static_assert(sizeof(FragmentHeader) == 80, "FragmentHeader must be packed");

constexpr uint32_t kEndianMarker = 0x01020304;

bool HostIsLittleEndian() {
  const uint32_t probe = 1;
  unsigned char b;
  std::memcpy(&b, &probe, 1);
  return b == 1;
}

}  // namespace

FragmentSnapshot BuildFragmentSnapshot(const Graph& g, const Partition& part,
                                       int fragment_id, GraphView view,
                                       int halo_hops) {
  assert(fragment_id >= 0 && fragment_id < part.num_fragments);
  FragmentSnapshot f;
  f.fragment_id = fragment_id;
  f.num_fragments = part.num_fragments;
  f.halo_hops = halo_hops;
  f.members = part.members[fragment_id];
  f.owned = NodeSet(g.NumNodes());
  for (NodeId v : f.members) f.owned.Add(v);

  // Halo = d-ball around the boundary members, minus the members. A node
  // within d hops of ANY member is within d hops of the last member on
  // the connecting path — which has a crossing edge, hence is boundary —
  // so seeding the BFS from the boundary only is exact, not a heuristic.
  NodeSet include(g.NumNodes());
  for (NodeId v : f.members) include.Add(v);
  if (halo_hops > 0 && !part.boundary[fragment_id].empty()) {
    NodeSet ball =
        DHopNeighborhood(g, part.boundary[fragment_id], halo_hops, view);
    for (NodeId v : ball.members()) include.Add(v);
  }
  std::vector<NodeId> all = include.members();
  std::sort(all.begin(), all.end());
  f.halo.reserve(all.size() - f.members.size());
  for (NodeId v : all) {
    if (!f.owned.Contains(v)) {
      f.halo.push_back(v);
      f.halo_owner.push_back(part.fragment_of[v]);
    }
  }

  f.csr = std::make_unique<GraphSnapshot>(g, view, include);
  f.candidates = FragmentCandidates(GraphAccessor(*f.csr), f.members);
  return f;
}

StatusOr<std::string> SerializeFragment(const FragmentSnapshot& frag) {
  if (!HostIsLittleEndian()) {
    return Status::Unimplemented("fragment format is little-endian only");
  }
  if (frag.csr == nullptr) {
    return Status::InvalidArgument("fragment has no CSR snapshot");
  }
  NGD_ASSIGN_OR_RETURN(std::string snap_image, SerializeSnapshot(*frag.csr));

  FragmentHeader header{};
  std::memcpy(header.magic, kFragmentMagic, sizeof(header.magic));
  header.version = kFragmentFormatVersion;
  header.endian = kEndianMarker;
  header.fragment_id = frag.fragment_id;
  header.num_fragments = frag.num_fragments;
  header.halo_hops = frag.halo_hops;
  header.member_count = frag.members.size();
  header.halo_count = frag.halo.size();
  header.snapshot_bytes = snap_image.size();
  header.members_checksum =
      Fnv1a(frag.members.data(), frag.members.size() * sizeof(NodeId));
  header.halo_checksum =
      Fnv1a(frag.halo.data(), frag.halo.size() * sizeof(NodeId));
  header.owner_checksum =
      Fnv1a(frag.halo_owner.data(), frag.halo_owner.size() * sizeof(int32_t));

  std::string out;
  out.reserve(sizeof(header) +
              (frag.members.size() + 2 * frag.halo.size()) * sizeof(NodeId) +
              snap_image.size());
  out.append(reinterpret_cast<const char*>(&header), sizeof(header));
  auto append_array = [&out](const void* data, size_t len) {
    if (len > 0) out.append(static_cast<const char*>(data), len);
  };
  append_array(frag.members.data(), frag.members.size() * sizeof(NodeId));
  append_array(frag.halo.data(), frag.halo.size() * sizeof(NodeId));
  append_array(frag.halo_owner.data(),
               frag.halo_owner.size() * sizeof(int32_t));
  out.append(snap_image);
  return out;
}

StatusOr<FragmentSnapshot> DeserializeFragment(std::string_view bytes,
                                               SchemaPtr schema) {
  if (!HostIsLittleEndian()) {
    return Status::Unimplemented("fragment format is little-endian only");
  }
  if (bytes.size() < sizeof(FragmentHeader)) {
    return Status::Corruption("truncated fragment: " +
                              std::to_string(bytes.size()) +
                              " bytes is smaller than the header");
  }
  FragmentHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (std::memcmp(header.magic, kFragmentMagic, sizeof(header.magic)) != 0) {
    return Status::Corruption("not a fragment file (bad magic)");
  }
  if (header.endian != kEndianMarker) {
    return Status::Corruption("fragment byte order mismatch");
  }
  if (header.version != kFragmentFormatVersion) {
    return Status::Corruption("unsupported fragment format version " +
                              std::to_string(header.version));
  }
  if (header.num_fragments < 1 || header.fragment_id < 0 ||
      header.fragment_id >= header.num_fragments || header.halo_hops < 0) {
    return Status::Corruption("fragment identity out of range");
  }
  // Divide, don't multiply: counts come from the file.
  const size_t body = bytes.size() - sizeof(header);
  if (header.member_count > body / sizeof(NodeId) ||
      header.halo_count > (body - header.member_count * sizeof(NodeId)) /
                              (sizeof(NodeId) + sizeof(int32_t))) {
    return Status::Corruption("fragment ownership arrays extend past end "
                              "of file");
  }
  const size_t arrays_bytes = header.member_count * sizeof(NodeId) +
                              header.halo_count *
                                  (sizeof(NodeId) + sizeof(int32_t));
  if (header.snapshot_bytes != body - arrays_bytes) {
    return Status::Corruption("fragment: embedded snapshot size disagrees "
                              "with the file size");
  }

  FragmentSnapshot frag;
  frag.fragment_id = header.fragment_id;
  frag.num_fragments = header.num_fragments;
  frag.halo_hops = header.halo_hops;

  const char* cursor = bytes.data() + sizeof(header);
  auto read_array = [&](auto* vec, size_t count, uint64_t checksum,
                        const char* what) -> Status {
    using Elem = typename std::decay_t<decltype(*vec)>::value_type;
    if (Fnv1a(cursor, count * sizeof(Elem)) != checksum) {
      return Status::Corruption(std::string("checksum mismatch in fragment ") +
                                what + " array");
    }
    vec->resize(count);
    if (count > 0) std::memcpy(vec->data(), cursor, count * sizeof(Elem));
    cursor += count * sizeof(Elem);
    return Status::OK();
  };
  NGD_RETURN_IF_ERROR(read_array(&frag.members, header.member_count,
                                 header.members_checksum, "member"));
  NGD_RETURN_IF_ERROR(
      read_array(&frag.halo, header.halo_count, header.halo_checksum, "halo"));
  NGD_RETURN_IF_ERROR(read_array(&frag.halo_owner, header.halo_count,
                                 header.owner_checksum, "halo-owner"));

  NGD_ASSIGN_OR_RETURN(
      frag.csr,
      DeserializeSnapshot(
          std::string_view(cursor, static_cast<size_t>(header.snapshot_bytes)),
          std::move(schema)));

  // Ownership invariants on top of the snapshot's own validation.
  const size_t n = frag.csr->NumNodes();
  auto corrupt = [](const char* what) {
    return Status::Corruption(std::string("fragment invariant violated: ") +
                              what);
  };
  frag.owned = NodeSet(n);
  NodeId prev = 0;
  for (size_t i = 0; i < frag.members.size(); ++i) {
    const NodeId v = frag.members[i];
    if (v >= n) return corrupt("member id out of range");
    if (i > 0 && v <= prev) return corrupt("members not strictly ascending");
    prev = v;
    frag.owned.Add(v);
  }
  prev = 0;
  for (size_t i = 0; i < frag.halo.size(); ++i) {
    const NodeId v = frag.halo[i];
    if (v >= n) return corrupt("halo id out of range");
    if (i > 0 && v <= prev) {
      return corrupt("halo nodes not strictly ascending");
    }
    prev = v;
    if (frag.owned.Contains(v)) return corrupt("halo node is also a member");
    const int32_t owner = frag.halo_owner[i];
    if (owner < 0 || owner >= frag.num_fragments ||
        owner == frag.fragment_id) {
      return corrupt("halo owner tag out of range");
    }
  }

  frag.candidates =
      FragmentCandidates(GraphAccessor(*frag.csr), frag.members);
  return frag;
}

Status SaveFragmentFile(const FragmentSnapshot& frag,
                        const std::string& path) {
  NGD_ASSIGN_OR_RETURN(std::string image, SerializeFragment(frag));
  // Atomic replace: a crash mid-save must leave the previous file intact.
  return WriteFileAtomic(path, image, NGD_FAILPOINT("fragment_write"));
}

StatusOr<FragmentSnapshot> LoadFragmentFile(const std::string& path,
                                            SchemaPtr schema) {
  NGD_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  return DeserializeFragment(bytes, std::move(schema));
}

}  // namespace ngd
