// Synthetic graph generation.
//
// The paper evaluates on DBpedia (28M nodes / 33.4M edges, 200 node types /
// 160 edge types), YAGO2 (3.5M / 7.35M, 13 / 36), Pokec (1.63M / 30.6M,
// 269 / 11) and synthetic graphs with |L| = 500 labels and 2000 integer
// values. Those datasets are not redistributable here, so each preset
// below reproduces a graph family with the same label-alphabet sizes,
// density and skew, at a configurable scale (see DESIGN.md §3). All
// detection algorithms are driven by exactly these statistics — label
// selectivity, degree distribution, d-hop neighborhood size — so the
// relative behaviour (Fig. 4 shapes) is preserved.

#ifndef NGD_GRAPH_GENERATORS_H_
#define NGD_GRAPH_GENERATORS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "graph/graph.h"

namespace ngd {

struct GraphGenConfig {
  std::string name = "synthetic";
  size_t num_nodes = 10000;
  size_t num_edges = 20000;
  size_t num_node_labels = 500;
  size_t num_edge_labels = 50;
  /// Attribute alphabet size; each node gets attrs_per_node of them.
  size_t num_attrs = 20;
  size_t attrs_per_node = 3;
  int64_t value_min = 0;
  int64_t value_max = 1999;  // paper's Synthetic: 2000 integer values
  /// Zipf skew of node/edge label frequencies (0 = uniform).
  double label_skew = 0.8;
  /// Fraction of edge endpoints drawn by preferential attachment; higher
  /// values produce heavier-tailed degree distributions (social networks).
  double pref_attach = 0.3;
  uint64_t seed = 7;
};

/// Builds a random graph per the config. The schema receives interned
/// labels "t0..","e0.." and attributes "a0..".
std::unique_ptr<Graph> GenerateGraph(const GraphGenConfig& config,
                                     SchemaPtr schema);

/// Presets mirroring §7's datasets at `scale` (1.0 = paper-sized).
/// Defaults in bench/ use scale ≈ 1/500 so each bench finishes in seconds
/// on a laptop; EXPERIMENTS.md records the scaled sizes.
GraphGenConfig DBpediaLikeConfig(double scale, uint64_t seed = 7);
GraphGenConfig Yago2LikeConfig(double scale, uint64_t seed = 7);
GraphGenConfig PokecLikeConfig(double scale, uint64_t seed = 7);
/// Paper's Synthetic graph at explicit size.
GraphGenConfig SyntheticConfig(size_t num_nodes, size_t num_edges,
                               uint64_t seed = 7);

}  // namespace ngd

#endif  // NGD_GRAPH_GENERATORS_H_
