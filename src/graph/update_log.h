// The update journal: crash-safe epochs for the incremental engines.
//
// The paper's incremental detection (§5–6) consumes a stream of update
// batches, one per commit epoch. A resident service (ROADMAP item 1)
// must be able to lose the process at any instant and recover the exact
// committed graph, so every epoch is journaled *before* it commits:
//
//   1. mutate the graph: new nodes + a pending edge overlay (ΔG)
//   2. wal->Append(EpochRecord::Capture(g, batch, ...));  wal->Sync();
//   3. g->Commit();
//
// A crash before (2) loses an uncommitted epoch — correct, it never
// became durable. A crash during (2) leaves a torn tail that Open()
// truncates. After (2), replay reproduces the epoch.
//
// File format NGDWAL1 (little-endian):
//   header   : magic "NGDWAL1\0" | u32 version | u32 endian probe
//              | u64 base_epoch
//   record   : u32 payload_len | u32 kind | u64 epoch | u64 fnv1a(payload)
//              | payload bytes
// Epoch ids are strictly consecutive from base_epoch+1. Records are
// self-describing: label/attribute *names* travel in a per-record string
// table (no dependence on the writer's dictionary ids), and insertions
// that introduced nodes journal those nodes' labels and attributes.
//
// Tail policy (the durability contract): a final record whose header or
// payload runs past EOF, or whose checksum fails *with no bytes after
// it*, is a torn tail — Open() truncates it and recovers. So is a bad
// record followed only by zero bytes up to EOF (an append torn onto
// pre-zeroed blocks; no committed record can be all zeros, since even an
// empty payload has a nonzero FNV-1a checksum). A checksum failure
// followed by nonzero bytes cannot be a crash artifact of an append-only
// writer and is rejected as kCorruption.
//
// Replay is idempotent: re-applying a record to a graph that already
// contains its effects (the RotateState crash window: new snapshot +
// old journal) is a no-op — node creation is guarded by the journaled
// first-new-node id, and edge inserts/deletes that already happened are
// dropped by ApplyUpdateBatch's no-op rule.

#ifndef NGD_GRAPH_UPDATE_LOG_H_
#define NGD_GRAPH_UPDATE_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/updates.h"
#include "util/status.h"

namespace ngd {

inline constexpr char kWalMagic[8] = {'N', 'G', 'D', 'W', 'A', 'L', '1', 0};
inline constexpr uint32_t kWalFormatVersion = 1;

/// One committed epoch, self-contained: the nodes the batch introduced
/// (with label/attribute names, not writer-local ids) plus the effective
/// edge updates.
struct EpochRecord {
  struct NewNode {
    std::string label;
    std::vector<std::pair<std::string, Value>> attrs;
  };
  struct EdgeUpdate {
    UpdateKind kind;
    NodeId src;
    NodeId dst;
    std::string label;
  };

  uint64_t epoch = 0;
  /// Id of the first node the epoch created; nodes
  /// [first_new_node, first_new_node + new_nodes.size()) are `new_nodes`.
  NodeId first_new_node = 0;
  std::vector<NewNode> new_nodes;
  std::vector<EdgeUpdate> updates;

  /// Snapshots the epoch from a live graph: `batch` must be the effective
  /// batch (post-ApplyUpdateBatch), `first_new_node` the NumNodes() value
  /// from before the batch was generated. Labels and attributes are
  /// resolved to names through g's schema.
  static EpochRecord Capture(const Graph& g, const UpdateBatch& batch,
                             NodeId first_new_node, uint64_t epoch);

  /// Replays the epoch onto `g` and commits it. Idempotent (see header
  /// comment); malformed contents (node-id gaps, out-of-range endpoints)
  /// return kCorruption with the graph rolled back to its committed
  /// state.
  [[nodiscard]] Status ApplyTo(Graph* g) const;
};

/// Append-only journal handle. Not thread-safe; the owner serializes
/// epochs by construction (one writer per state directory).
class UpdateLog {
 public:
  struct OpenInfo {
    bool created = false;          ///< file did not exist (or was empty)
    uint64_t base_epoch = 0;       ///< epoch of the snapshot this log extends
    uint64_t last_epoch = 0;       ///< last journaled epoch (== base if none)
    size_t records = 0;            ///< records found on open
    uint64_t truncated_bytes = 0;  ///< torn tail dropped on open
  };

  /// Create-or-recover: a missing/empty file becomes a fresh journal with
  /// base_epoch 0; an existing one is scanned, a torn tail truncated
  /// (never an error), and appends resume after the last good record.
  /// Mid-file corruption is kCorruption.
  [[nodiscard]] static StatusOr<std::unique_ptr<UpdateLog>> Open(const std::string& path,
                                                   OpenInfo* info = nullptr);

  /// Starts a fresh journal at base_epoch, atomically replacing any file
  /// at `path` (used by RotateState).
  [[nodiscard]] static StatusOr<std::unique_ptr<UpdateLog>> Create(const std::string& path,
                                                     uint64_t base_epoch);

  ~UpdateLog();
  UpdateLog(const UpdateLog&) = delete;
  UpdateLog& operator=(const UpdateLog&) = delete;

  /// Appends one epoch. rec.epoch must be last_epoch() + 1 (strictly
  /// consecutive ids are what lets recovery prove nothing is missing).
  /// The record is durable only after the next Sync().
  [[nodiscard]] Status Append(const EpochRecord& rec);

  /// Explicit sync point: flushes the OS pipeline with fsync. An epoch
  /// may only Commit() on the in-memory graph after its Sync succeeded.
  [[nodiscard]] Status Sync();

  const std::string& path() const { return path_; }
  uint64_t base_epoch() const { return base_epoch_; }
  uint64_t last_epoch() const { return last_epoch_; }

 private:
  UpdateLog(std::string path, int fd, uint64_t base_epoch,
            uint64_t last_epoch)
      : path_(std::move(path)),
        fd_(fd),
        base_epoch_(base_epoch),
        last_epoch_(last_epoch) {}

  std::string path_;
  int fd_ = -1;
  uint64_t base_epoch_ = 0;
  uint64_t last_epoch_ = 0;
  bool sync_failure_pending_ = false;  // injected via failpoint
};

/// Reads and validates a journal without opening it for append, applying
/// the same torn-tail policy (`info`, optional, reports what was found —
/// the file itself is not modified).
[[nodiscard]] StatusOr<std::vector<EpochRecord>> ReadLogRecords(const std::string& path,
                                                  UpdateLog::OpenInfo* info);

struct RecoverResult {
  std::unique_ptr<Graph> graph;
  uint64_t last_epoch = 0;       ///< epoch the recovered graph reflects
  size_t replayed_records = 0;   ///< journal records applied
  uint64_t truncated_bytes = 0;  ///< torn tail dropped from the journal
  bool snapshot_loaded = false;  ///< base came from the snapshot file
};

/// Rebuilds the committed graph: loads the latest good snapshot at
/// `snapshot_path` (a missing file means "empty base"), then replays the
/// journal at `wal_path` (a missing journal means "no suffix"). Both
/// missing yields an empty graph at epoch 0. A snapshot or journal that
/// exists but is corrupt beyond the torn-tail rule is kCorruption.
[[nodiscard]] StatusOr<RecoverResult> RecoverState(const std::string& snapshot_path,
                                     const std::string& wal_path,
                                     SchemaPtr schema);

/// Compaction: atomically writes `g` (GraphView::kNew; no pending overlay
/// allowed) to `snapshot_path`, then swaps `*wal` for a fresh journal
/// whose base_epoch is the old log's last_epoch. Both steps are atomic
/// file replacements, so a crash between them leaves "new snapshot + old
/// journal" — recoverable because replay is idempotent.
[[nodiscard]] Status RotateState(const Graph& g, const std::string& snapshot_path,
                   std::unique_ptr<UpdateLog>* wal);

}  // namespace ngd

#endif  // NGD_GRAPH_UPDATE_LOG_H_
