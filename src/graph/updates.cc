#include "graph/updates.h"

#include <algorithm>

namespace ngd {

size_t UpdateBatch::NumInsertions() const {
  size_t n = 0;
  for (const auto& u : updates) n += u.kind == UpdateKind::kInsert ? 1 : 0;
  return n;
}

size_t UpdateBatch::NumDeletions() const {
  return updates.size() - NumInsertions();
}

Status ApplyUpdateBatch(Graph* g, UpdateBatch* batch,
                        size_t* failed_record) {
  std::vector<UnitUpdate> effective;
  effective.reserve(batch->updates.size());
  for (size_t i = 0; i < batch->updates.size(); ++i) {
    const UnitUpdate& u = batch->updates[i];
    Status s = u.kind == UpdateKind::kInsert
                   ? g->InsertEdge(u.src, u.dst, u.label)
                   : g->DeleteEdge(u.src, u.dst, u.label);
    if (s.ok()) {
      effective.push_back(u);
    } else if (s.code() != StatusCode::kAlreadyExists &&
               s.code() != StatusCode::kNotFound) {
      // Real failure: keep the documented invariant "batch == overlay" by
      // truncating to the effective prefix before reporting the error.
      if (failed_record != nullptr) *failed_record = i;
      batch->updates = std::move(effective);
      return s;
    }
    // kAlreadyExists / kNotFound: the unit update is a no-op; drop it.
  }
  batch->updates = std::move(effective);
  return Status::OK();
}

namespace {

std::vector<EdgeKey> CollectBaseEdges(const Graph& g) {
  std::vector<EdgeKey> edges;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (const auto& e : g.OutEdges(v)) {
      if (e.state == EdgeState::kBase) {
        edges.push_back(EdgeKey{v, e.other, e.label});
      }
    }
  }
  return edges;
}

}  // namespace

UpdateBatch GenerateUpdateBatch(Graph* g, const UpdateGenOptions& opts) {
  Rng rng(opts.seed);
  UpdateBatch batch;
  std::vector<EdgeKey> edges = CollectBaseEdges(*g);
  if (edges.empty()) return batch;

  size_t total =
      static_cast<size_t>(opts.fraction * static_cast<double>(edges.size()));
  size_t num_inserts =
      static_cast<size_t>(opts.insert_fraction * static_cast<double>(total));
  size_t num_deletes = total - num_inserts;

  // Deletions: sample distinct base edges via partial Fisher-Yates.
  num_deletes = std::min(num_deletes, edges.size());
  for (size_t i = 0; i < num_deletes; ++i) {
    size_t j = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(i),
                       static_cast<int64_t>(edges.size()) - 1));
    std::swap(edges[i], edges[j]);
    batch.updates.push_back(
        {UpdateKind::kDelete, edges[i].src, edges[i].dst, edges[i].label});
  }

  // Insertions: rewire one endpoint of a template edge to a same-labeled
  // node (or a fresh clone), keeping the edge label, so the inserted edge
  // has the label profile of real edges and can trigger pattern pivots.
  for (size_t i = 0; i < num_inserts; ++i) {
    const EdgeKey& tpl = rng.PickFrom(edges);
    bool rewire_src = rng.Bernoulli(0.5);
    NodeId anchor = rewire_src ? tpl.dst : tpl.src;
    NodeId moved = rewire_src ? tpl.src : tpl.dst;
    NodeId replacement = kInvalidNode;
    if (rng.Bernoulli(opts.new_node_prob)) {
      // Fresh node cloning the moved endpoint's label and attribute shape,
      // with jittered integer values.
      replacement = g->AddNode(g->NodeLabel(moved));
      for (const auto& [attr, val] : g->Attrs(moved)) {
        if (val.is_int()) {
          int64_t jitter = rng.UniformInt(-10, 10);
          g->SetAttr(replacement, attr, Value(val.AsInt() + jitter));
        } else {
          g->SetAttr(replacement, attr, val);
        }
      }
    } else {
      const auto& candidates = g->NodesWithLabel(g->NodeLabel(moved));
      if (candidates.empty()) continue;
      replacement = rng.PickFrom(candidates);
    }
    NodeId src = rewire_src ? replacement : anchor;
    NodeId dst = rewire_src ? anchor : replacement;
    if (src == dst) continue;
    if (g->HasEdge(src, dst, tpl.label, GraphView::kNew)) continue;
    batch.updates.push_back({UpdateKind::kInsert, src, dst, tpl.label});
  }
  return batch;
}

}  // namespace ngd
