#include "graph/graph.h"

#include <algorithm>
#include <sstream>

namespace ngd {

const std::vector<NodeId> Graph::kEmptyNodeList;

Graph::Graph(SchemaPtr schema) : schema_(std::move(schema)) {}

NodeId Graph::AddNode(LabelId label) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(NodeRecord{label, {}});
  out_.emplace_back();
  in_.emplace_back();
  if (label >= label_index_.size()) label_index_.resize(label + 1);
  label_index_[label].push_back(id);
  return id;
}

NodeId Graph::AddNode(std::string_view label_name) {
  return AddNode(schema_->InternLabel(label_name));
}

void Graph::SetAttr(NodeId v, AttrId attr, Value value) {
  auto& attrs = nodes_[v].attrs;
  auto it = std::lower_bound(
      attrs.begin(), attrs.end(), attr,
      [](const auto& p, AttrId a) { return p.first < a; });
  if (it != attrs.end() && it->first == attr) {
    it->second = std::move(value);
  } else {
    attrs.insert(it, {attr, std::move(value)});
  }
}

void Graph::SetAttr(NodeId v, std::string_view attr_name, Value value) {
  SetAttr(v, schema_->InternAttr(attr_name), std::move(value));
}

const Value* Graph::GetAttr(NodeId v, AttrId attr) const {
  const auto& attrs = nodes_[v].attrs;
  auto it = std::lower_bound(
      attrs.begin(), attrs.end(), attr,
      [](const auto& p, AttrId a) { return p.first < a; });
  if (it != attrs.end() && it->first == attr) return &it->second;
  return nullptr;
}

Status Graph::AddEdge(NodeId src, NodeId dst, LabelId label) {
  if (src >= nodes_.size() || dst >= nodes_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  EdgeKey key{src, dst, label};
  if (edge_index_.count(key) > 0) {
    return Status::AlreadyExists("edge already exists");
  }
  edge_index_.emplace(key, EdgeState::kBase);
  out_[src].push_back({dst, label, EdgeState::kBase});
  in_[dst].push_back({src, label, EdgeState::kBase});
  ++num_base_edges_;
  return Status::OK();
}

Status Graph::AddEdge(NodeId src, NodeId dst, std::string_view label_name) {
  return AddEdge(src, dst, schema_->InternLabel(label_name));
}

Status Graph::InsertEdge(NodeId src, NodeId dst, LabelId label) {
  if (src >= nodes_.size() || dst >= nodes_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  EdgeKey key{src, dst, label};
  auto it = edge_index_.find(key);
  if (it != edge_index_.end()) {
    if (it->second == EdgeState::kDeleted) {
      // Reinsert of a deleted edge: net effect is the edge stays; it is in
      // both views again. Fold to base and drop both pending ops.
      it->second = EdgeState::kBase;
      SetEdgeState(src, dst, label, EdgeState::kBase);
      ++num_base_edges_;
      --num_deleted_edges_;
      --pending_updates_;
      return Status::OK();
    }
    return Status::AlreadyExists("edge already exists in current view");
  }
  edge_index_.emplace(key, EdgeState::kInserted);
  out_[src].push_back({dst, label, EdgeState::kInserted});
  in_[dst].push_back({src, label, EdgeState::kInserted});
  ++num_inserted_edges_;
  ++pending_updates_;
  return Status::OK();
}

Status Graph::DeleteEdge(NodeId src, NodeId dst, LabelId label) {
  EdgeKey key{src, dst, label};
  auto it = edge_index_.find(key);
  if (it == edge_index_.end() || it->second == EdgeState::kDeleted) {
    return Status::NotFound("edge not present in G ⊕ ΔG");
  }
  if (it->second == EdgeState::kInserted) {
    // Deleting a pending insertion cancels it.
    edge_index_.erase(it);
    RemoveAdjEntries(src, dst, label);
    --num_inserted_edges_;
    --pending_updates_;
    return Status::OK();
  }
  it->second = EdgeState::kDeleted;
  SetEdgeState(src, dst, label, EdgeState::kDeleted);
  --num_base_edges_;
  ++num_deleted_edges_;
  ++pending_updates_;
  return Status::OK();
}

void Graph::SetEdgeState(NodeId src, NodeId dst, LabelId label,
                         EdgeState state) {
  for (auto& e : out_[src]) {
    if (e.other == dst && e.label == label) {
      e.state = state;
      break;
    }
  }
  for (auto& e : in_[dst]) {
    if (e.other == src && e.label == label) {
      e.state = state;
      break;
    }
  }
}

void Graph::RemoveAdjEntries(NodeId src, NodeId dst, LabelId label) {
  auto erase_one = [](std::vector<AdjEntry>& v, NodeId other, LabelId l) {
    for (size_t i = 0; i < v.size(); ++i) {
      if (v[i].other == other && v[i].label == l) {
        v[i] = v.back();
        v.pop_back();
        return;
      }
    }
  };
  erase_one(out_[src], dst, label);
  erase_one(in_[dst], src, label);
}

void Graph::Commit() {
  if (pending_updates_ == 0) return;
  for (auto it = edge_index_.begin(); it != edge_index_.end();) {
    if (it->second == EdgeState::kDeleted) {
      RemoveAdjEntries(it->first.src, it->first.dst, it->first.label);
      it = edge_index_.erase(it);
    } else {
      if (it->second == EdgeState::kInserted) {
        SetEdgeState(it->first.src, it->first.dst, it->first.label,
                     EdgeState::kBase);
        it->second = EdgeState::kBase;
      }
      ++it;
    }
  }
  num_base_edges_ += num_inserted_edges_;
  num_inserted_edges_ = 0;
  num_deleted_edges_ = 0;
  pending_updates_ = 0;
}

void Graph::Rollback() {
  if (pending_updates_ == 0) return;
  for (auto it = edge_index_.begin(); it != edge_index_.end();) {
    if (it->second == EdgeState::kInserted) {
      RemoveAdjEntries(it->first.src, it->first.dst, it->first.label);
      it = edge_index_.erase(it);
    } else {
      if (it->second == EdgeState::kDeleted) {
        SetEdgeState(it->first.src, it->first.dst, it->first.label,
                     EdgeState::kBase);
        it->second = EdgeState::kBase;
      }
      ++it;
    }
  }
  num_base_edges_ += num_deleted_edges_;
  num_inserted_edges_ = 0;
  num_deleted_edges_ = 0;
  pending_updates_ = 0;
}

size_t Graph::NumEdges(GraphView view) const {
  return view == GraphView::kOld ? num_base_edges_ + num_deleted_edges_
                                 : num_base_edges_ + num_inserted_edges_;
}

bool Graph::HasEdge(NodeId src, NodeId dst, LabelId label,
                    GraphView view) const {
  auto it = edge_index_.find(EdgeKey{src, dst, label});
  if (it == edge_index_.end()) return false;
  return EdgeInView(it->second, view);
}

std::optional<EdgeState> Graph::EdgeStateOf(NodeId src, NodeId dst,
                                            LabelId label) const {
  auto it = edge_index_.find(EdgeKey{src, dst, label});
  if (it == edge_index_.end()) return std::nullopt;
  return it->second;
}

size_t Graph::Degree(NodeId v, GraphView view) const {
  size_t d = 0;
  for (const auto& e : out_[v]) d += EdgeInView(e.state, view) ? 1 : 0;
  for (const auto& e : in_[v]) d += EdgeInView(e.state, view) ? 1 : 0;
  return d;
}

const std::vector<NodeId>& Graph::NodesWithLabel(LabelId label) const {
  if (label >= label_index_.size()) return kEmptyNodeList;
  return label_index_[label];
}

std::string Graph::DebugString() const {
  std::ostringstream os;
  os << "Graph{" << NumNodes() << " nodes, " << NumEdges(GraphView::kNew)
     << " edges (new view), " << NumEdges(GraphView::kOld)
     << " edges (old view)}\n";
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    os << "  [" << v << "] " << NodeLabelName(v);
    for (const auto& [a, val] : nodes_[v].attrs) {
      os << " " << schema_->attrs().NameOf(a) << "=" << val.ToString();
    }
    os << "\n";
    for (const auto& e : out_[v]) {
      os << "    -[" << schema_->labels().NameOf(e.label) << "]-> " << e.other
         << (e.state == EdgeState::kInserted
                 ? " (+)"
                 : e.state == EdgeState::kDeleted ? " (-)" : "")
         << "\n";
    }
  }
  return os.str();
}

}  // namespace ngd
