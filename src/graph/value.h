// Attribute values.
//
// Nodes carry attribute tuples F_A(v) = (A1 = a1, ..., An = an) with
// constants drawn from U (paper §2). ngdlib values are tagged int64 or
// string: arithmetic and order comparisons are defined on integers only
// (the paper's terms are integers), while =/!= also apply to strings so
// that NGDs subsume GFD/CFD constant bindings such as w.type = "Olympic".

#ifndef NGD_GRAPH_VALUE_H_
#define NGD_GRAPH_VALUE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace ngd {

class Value {
 public:
  enum class Type : uint8_t { kInt = 0, kString = 1 };

  Value() : data_(int64_t{0}) {}
  Value(int64_t v) : data_(v) {}  // NOLINT: implicit by design
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT

  Type type() const {
    return data_.index() == 0 ? Type::kInt : Type::kString;
  }
  bool is_int() const { return type() == Type::kInt; }
  bool is_string() const { return type() == Type::kString; }

  /// Requires is_int().
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  /// Requires is_string().
  const std::string& AsString() const { return std::get<std::string>(data_); }

  bool operator==(const Value& o) const { return data_ == o.data_; }
  bool operator!=(const Value& o) const { return data_ != o.data_; }

  std::string ToString() const;

  /// Stable hash (for violation sets and dedup).
  size_t Hash() const;

 private:
  std::variant<int64_t, std::string> data_;
};

}  // namespace ngd

#endif  // NGD_GRAPH_VALUE_H_
