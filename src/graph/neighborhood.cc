#include "graph/neighborhood.h"

#include <queue>

namespace ngd {

NodeSet DHopNeighborhood(const Graph& g, const std::vector<NodeId>& seeds,
                         int d, GraphView view) {
  NodeSet set(g.NumNodes());
  std::queue<std::pair<NodeId, int>> frontier;
  for (NodeId s : seeds) {
    if (!set.Contains(s)) {
      set.Add(s);
      frontier.push({s, 0});
    }
  }
  while (!frontier.empty()) {
    auto [v, dist] = frontier.front();
    frontier.pop();
    if (dist >= d) continue;
    auto visit = [&](const AdjEntry& e) {
      if (!EdgeInView(e.state, view)) return;
      if (!set.Contains(e.other)) {
        set.Add(e.other);
        frontier.push({e.other, dist + 1});
      }
    };
    for (const auto& e : g.OutEdges(v)) visit(e);
    for (const auto& e : g.InEdges(v)) visit(e);
  }
  return set;
}

size_t NeighborhoodAdjSize(const Graph& g, const NodeSet& set) {
  size_t total = 0;
  for (NodeId v : set.members()) total += g.AdjSize(v);
  return total;
}

}  // namespace ngd
