#include "graph/graph_io.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/string_util.h"

namespace ngd {

namespace {

// ---- Record-name validation -------------------------------------------------

/// Identifier rule shared by writer and readers: non-empty, no whitespace
/// or control characters; attribute names additionally exclude '=' (the
/// key/value separator) and '"' (would mimic a string opener).
bool ValidTsvName(std::string_view name, bool is_attr) {
  if (name.empty()) return false;
  for (char c : name) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x21 || u == 0x7f) return false;  // space, controls, DEL
    if (is_attr && (c == '=' || c == '"')) return false;
  }
  return true;
}

void EscapeStringTo(std::string_view s, std::ostream* os) {
  *os << '"';
  for (char c : s) {
    switch (c) {
      case '\\':
        *os << "\\\\";
        break;
      case '"':
        *os << "\\\"";
        break;
      case '\t':
        *os << "\\t";
        break;
      case '\n':
        *os << "\\n";
        break;
      case '\r':
        *os << "\\r";
        break;
      default:
        *os << c;
    }
  }
  *os << '"';
}

// ---- Shard-local parse state ------------------------------------------------

/// Thread-local interning: first-occurrence order within the shard, so
/// the deterministic shard-order merge reproduces the global
/// first-occurrence order a sequential parse would produce. Keys are
/// views into the chunk text (which outlives the shard and the merge),
/// so the hot per-record path allocates nothing.
struct LocalDict {
  std::vector<std::string_view> names;
  std::unordered_map<std::string_view, uint32_t> index;

  uint32_t Intern(std::string_view name) {
    auto [it, inserted] =
        index.try_emplace(name, static_cast<uint32_t>(names.size()));
    if (inserted) names.push_back(name);
    return it->second;
  }
};

struct ParsedAttr {
  uint32_t name;  // local attr-dict id
  Value value;
};

struct ParsedNode {
  uint32_t label;  // local label-dict id
  uint32_t attr_begin;
  uint32_t attr_end;  // into Shard::attrs
};

struct ParsedEdge {
  int64_t src;
  int64_t dst;        // absolute file-declared ids, validated at merge
  uint32_t label;     // local label-dict id
  uint32_t line;      // shard-local line number (1-based)
};

struct Shard {
  LocalDict labels;
  LocalDict attr_names;
  std::vector<ParsedNode> nodes;
  std::vector<ParsedAttr> attrs;
  std::vector<ParsedEdge> edges;
  size_t num_lines = 0;  // every input line, incl. comments/blanks
  Status error = Status::OK();
  size_t error_line = 0;  // shard-local line of `error`
};

/// Splits `s` on `sep` into string_views, keeping empty pieces.
void SplitFields(std::string_view s, char sep,
                 std::vector<std::string_view>* out) {
  out->clear();
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out->push_back(s.substr(start));
      return;
    }
    out->push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

/// Decodes an attribute value field: a quoted escaped string or a base-10
/// integer. Returns false with *msg set on malformed input.
bool ParseAttrValue(std::string_view raw, Value* out, std::string* msg) {
  if (!raw.empty() && raw.front() == '"') {
    std::string s;
    s.reserve(raw.size());
    size_t i = 1;
    while (i < raw.size()) {
      const char c = raw[i];
      if (c == '"') {
        if (i + 1 != raw.size()) {
          *msg = "garbage after closing quote in string value";
          return false;
        }
        *out = Value(std::move(s));
        return true;
      }
      if (c == '\\') {
        if (i + 1 >= raw.size()) {
          *msg = "dangling escape in string value";
          return false;
        }
        const char e = raw[i + 1];
        switch (e) {
          case '\\':
            s.push_back('\\');
            break;
          case '"':
            s.push_back('"');
            break;
          case 't':
            s.push_back('\t');
            break;
          case 'n':
            s.push_back('\n');
            break;
          case 'r':
            s.push_back('\r');
            break;
          default:
            *msg = std::string("unknown escape \\") + e + " in string value";
            return false;
        }
        i += 2;
        continue;
      }
      s.push_back(c);
      ++i;
    }
    *msg = "unterminated string value";
    return false;
  }
  auto n = ParseInt64(raw);
  if (!n) {
    *msg = "bad integer attr value " + std::string(raw);
    return false;
  }
  *out = Value(*n);
  return true;
}

/// Parses one stripped, non-comment line into the shard. `line` is the
/// shard-local line number for edge records (endpoint validation is
/// deferred to the merge, which needs the final node count).
Status ParseRecord(std::string_view sv, size_t line,
                   std::vector<std::string_view>* fields, Shard* shard) {
  SplitFields(sv, '\t', fields);
  const std::string_view kind = (*fields)[0];
  if (kind == "N") {
    if (fields->size() < 2) return Status::Corruption("node record missing label");
    const std::string_view label = (*fields)[1];
    if (!ValidTsvName(label, /*is_attr=*/false)) {
      return Status::Corruption("bad node label \"" + std::string(label) +
                                "\"");
    }
    ParsedNode node;
    node.label = shard->labels.Intern(label);
    node.attr_begin = static_cast<uint32_t>(shard->attrs.size());
    for (size_t i = 2; i < fields->size(); ++i) {
      const std::string_view field = (*fields)[i];
      const size_t eq = field.find('=');
      if (eq == std::string_view::npos) {
        return Status::Corruption("bad attr " + std::string(field));
      }
      const std::string_view name = field.substr(0, eq);
      if (!ValidTsvName(name, /*is_attr=*/true)) {
        return Status::Corruption("bad attr name \"" + std::string(name) +
                                  "\"");
      }
      ParsedAttr attr;
      attr.name = shard->attr_names.Intern(name);
      std::string msg;
      if (!ParseAttrValue(field.substr(eq + 1), &attr.value, &msg)) {
        return Status::Corruption(msg);
      }
      shard->attrs.push_back(std::move(attr));
    }
    node.attr_end = static_cast<uint32_t>(shard->attrs.size());
    shard->nodes.push_back(node);
    return Status::OK();
  }
  if (kind == "E") {
    if (fields->size() != 4) {
      return Status::Corruption("edge record needs 4 fields");
    }
    auto src = ParseInt64((*fields)[1]);
    auto dst = ParseInt64((*fields)[2]);
    if (!src || !dst) return Status::Corruption("bad edge endpoints");
    const std::string_view label = (*fields)[3];
    if (!ValidTsvName(label, /*is_attr=*/false)) {
      return Status::Corruption("bad edge label \"" + std::string(label) +
                                "\"");
    }
    shard->edges.push_back(ParsedEdge{*src, *dst, shard->labels.Intern(label),
                                      static_cast<uint32_t>(line)});
    return Status::OK();
  }
  return Status::Corruption("unknown record type " + std::string(kind));
}

/// Parses one line-aligned chunk into `shard`; records the first error
/// (with its shard-local line) instead of returning early state.
void ParseChunk(std::string_view chunk, Shard* shard) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  size_t line = 0;
  while (start < chunk.size()) {
    size_t end = chunk.find('\n', start);
    if (end == std::string_view::npos) end = chunk.size();
    ++line;
    const std::string_view sv =
        StripWhitespace(chunk.substr(start, end - start));
    start = end + 1;
    if (sv.empty() || sv[0] == '#') continue;
    Status s = ParseRecord(sv, line, &fields, shard);
    if (!s.ok()) {
      shard->error = std::move(s);
      shard->error_line = line;
      shard->num_lines = line;  // lines after the error are not counted
      return;
    }
  }
  shard->num_lines = line;
}

/// Line-aligned chunk boundaries: each boundary is the byte after a '\n'.
std::vector<std::string_view> SplitChunks(std::string_view text,
                                          size_t want_chunks) {
  std::vector<std::string_view> chunks;
  const size_t n = text.size();
  size_t begin = 0;
  for (size_t c = 0; c < want_chunks && begin < n; ++c) {
    size_t target;
    if (c + 1 == want_chunks) {
      target = n;
    } else {
      target = begin + std::max<size_t>(1, (n - begin) / (want_chunks - c));
      // Extend to the byte after the next '\n' (target - 1 >= begin, so a
      // newline immediately before `target` keeps the boundary there).
      const size_t nl = text.find('\n', target - 1);
      target = nl == std::string_view::npos ? n : nl + 1;
    }
    chunks.push_back(text.substr(begin, target - begin));
    begin = target;
  }
  return chunks;
}

}  // namespace

Status WriteGraphText(const Graph& g, std::ostream* os, GraphView view) {
  const auto& schema = *g.schema();
  // Validate every name the emission below will write BEFORE the first
  // byte goes out: a rejected graph must not leave a truncated partial
  // file behind (SaveGraphFile writes straight to the destination).
  // Memoized per dictionary id — names are validated once, not once per
  // record occurrence.
  std::vector<uint8_t> label_state(schema.labels().size(), 0);
  std::vector<uint8_t> attr_state(schema.attrs().size(), 0);
  auto valid_id = [](std::vector<uint8_t>* memo, uint32_t id,
                     const Dictionary& dict, bool is_attr) {
    uint8_t& state = (*memo)[id];
    if (state == 0) {
      state = ValidTsvName(dict.NameOf(id), is_attr) ? 1 : 2;
    }
    return state == 1;
  };
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (!valid_id(&label_state, g.NodeLabel(v), schema.labels(), false)) {
      return Status::InvalidArgument(
          "node " + std::to_string(v) + " label \"" + g.NodeLabelName(v) +
          "\" is not TSV-serializable (empty, whitespace or control chars)");
    }
    for (const auto& [attr, val] : g.Attrs(v)) {
      (void)val;
      if (!valid_id(&attr_state, attr, schema.attrs(), true)) {
        return Status::InvalidArgument(
            "attr name \"" + schema.attrs().NameOf(attr) +
            "\" is not TSV-serializable (empty, whitespace, control chars, "
            "'=' or '\"')");
      }
    }
    for (const auto& e : g.OutEdges(v)) {
      if (!EdgeInView(e.state, view)) continue;
      if (!valid_id(&label_state, e.label, schema.labels(), false)) {
        return Status::InvalidArgument("edge label \"" +
                                       schema.labels().NameOf(e.label) +
                                       "\" is not TSV-serializable");
      }
    }
  }

  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    *os << "N\t" << g.NodeLabelName(v);
    for (const auto& [attr, val] : g.Attrs(v)) {
      *os << '\t' << schema.attrs().NameOf(attr) << '=';
      if (val.is_int()) {
        *os << val.AsInt();
      } else {
        EscapeStringTo(val.AsString(), os);
      }
    }
    *os << "\n";
  }
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (const auto& e : g.OutEdges(v)) {
      if (!EdgeInView(e.state, view)) continue;
      *os << "E\t" << v << "\t" << e.other << "\t"
          << schema.labels().NameOf(e.label) << "\n";
    }
  }
  if (!os->good()) return Status::Internal("stream write failed");
  return Status::OK();
}

Status SaveGraphFile(const Graph& g, const std::string& path,
                     GraphView view) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::NotFound("cannot open " + path);
  return WriteGraphText(g, &out, view);
}

StatusOr<std::unique_ptr<Graph>> ParseGraphText(std::string_view text,
                                                SchemaPtr schema,
                                                const IngestOptions& opts) {
  size_t threads = opts.threads > 0
                       ? static_cast<size_t>(opts.threads)
                       : std::max(1u, std::thread::hardware_concurrency());
  if (text.size() < opts.min_parallel_bytes) threads = 1;
  const std::vector<std::string_view> chunks =
      SplitChunks(text, std::max<size_t>(threads, 1));

  std::vector<Shard> shards(chunks.size());
  if (chunks.size() <= 1) {
    if (!chunks.empty()) ParseChunk(chunks[0], &shards[0]);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(chunks.size());
    for (size_t c = 0; c < chunks.size(); ++c) {
      workers.emplace_back(ParseChunk, chunks[c], &shards[c]);
    }
    for (std::thread& t : workers) t.join();
  }

  // First parse error in file order wins, independent of thread count.
  // (Endpoint-range errors are a later validation phase: they need the
  // final node count, so a parse error anywhere preempts them.)
  size_t line_base = 0;
  for (const Shard& shard : shards) {
    if (!shard.error.ok()) {
      return Status(shard.error.code(),
                    "line " + std::to_string(line_base + shard.error_line) +
                        ": " + shard.error.message());
    }
    line_base += shard.num_lines;
  }

  // Deterministic merge in shard (= file) order: global intern order is
  // the file order of first occurrence, exactly as a sequential parse.
  auto g = std::make_unique<Graph>(schema);
  std::vector<std::vector<LabelId>> label_maps(shards.size());
  std::vector<std::vector<AttrId>> attr_maps(shards.size());
  for (size_t s = 0; s < shards.size(); ++s) {
    label_maps[s].reserve(shards[s].labels.names.size());
    for (const std::string_view name : shards[s].labels.names) {
      label_maps[s].push_back(schema->InternLabel(name));
    }
    attr_maps[s].reserve(shards[s].attr_names.names.size());
    for (const std::string_view name : shards[s].attr_names.names) {
      attr_maps[s].push_back(schema->InternAttr(name));
    }
  }
  for (size_t s = 0; s < shards.size(); ++s) {
    Shard& shard = shards[s];
    for (const ParsedNode& node : shard.nodes) {
      const NodeId v = g->AddNode(label_maps[s][node.label]);
      for (uint32_t i = node.attr_begin; i < node.attr_end; ++i) {
        g->SetAttr(v, attr_maps[s][shard.attrs[i].name],
                   std::move(shard.attrs[i].value));
      }
    }
  }
  const int64_t num_nodes = static_cast<int64_t>(g->NumNodes());
  line_base = 0;
  for (size_t s = 0; s < shards.size(); ++s) {
    for (const ParsedEdge& e : shards[s].edges) {
      auto err = [&](const std::string& msg) {
        return Status::Corruption(
            "line " + std::to_string(line_base + e.line) + ": " + msg);
      };
      if (e.src < 0 || e.dst < 0) {
        return err("negative edge endpoint (" + std::to_string(e.src) + ", " +
                   std::to_string(e.dst) + ")");
      }
      if (e.src >= num_nodes || e.dst >= num_nodes) {
        return err("edge endpoint out of range (" + std::to_string(e.src) +
                   ", " + std::to_string(e.dst) + "); file declares " +
                   std::to_string(num_nodes) + " nodes");
      }
      Status added = g->AddEdge(static_cast<NodeId>(e.src),
                                static_cast<NodeId>(e.dst),
                                label_maps[s][e.label]);
      if (!added.ok()) return err(added.ToString());
    }
    line_base += shards[s].num_lines;
  }
  return g;
}

StatusOr<std::unique_ptr<Graph>> ReadGraphText(std::istream* is,
                                               SchemaPtr schema) {
  std::ostringstream ss;
  ss << is->rdbuf();
  return ParseGraphText(ss.str(), std::move(schema));
}

StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  const std::streamoff size = in.tellg();
  if (size < 0) return Status::Internal("cannot stat " + path);
  in.seekg(0);
  std::string bytes(static_cast<size_t>(size), '\0');
  if (size > 0) in.read(&bytes[0], size);
  if (!in.good() && size > 0) {
    return Status::Internal("read failed for " + path);
  }
  return bytes;
}

StatusOr<std::unique_ptr<Graph>> LoadGraphFile(const std::string& path,
                                               SchemaPtr schema,
                                               const IngestOptions& opts) {
  // One sized bulk read into the buffer the chunked parser slices; no
  // stringstream double-buffering on the production ingest path.
  NGD_ASSIGN_OR_RETURN(std::string text, ReadFileBytes(path));
  return ParseGraphText(text, std::move(schema), opts);
}

}  // namespace ngd
