#include "graph/graph_io.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace ngd {

Status WriteGraphText(const Graph& g, std::ostream* os) {
  const auto& schema = *g.schema();
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    *os << "N\t" << g.NodeLabelName(v);
    for (const auto& [attr, val] : g.Attrs(v)) {
      *os << "\t" << schema.attrs().NameOf(attr) << "=";
      if (val.is_int()) {
        *os << val.AsInt();
      } else {
        *os << '"' << val.AsString() << '"';
      }
    }
    *os << "\n";
  }
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (const auto& e : g.OutEdges(v)) {
      if (!EdgeInView(e.state, GraphView::kNew)) continue;
      *os << "E\t" << v << "\t" << e.other << "\t"
          << schema.labels().NameOf(e.label) << "\n";
    }
  }
  if (!os->good()) return Status::Internal("stream write failed");
  return Status::OK();
}

Status SaveGraphFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::NotFound("cannot open " + path);
  return WriteGraphText(g, &out);
}

StatusOr<std::unique_ptr<Graph>> ReadGraphText(std::istream* is,
                                               SchemaPtr schema) {
  auto g = std::make_unique<Graph>(schema);
  std::string line;
  size_t lineno = 0;
  while (std::getline(*is, line)) {
    ++lineno;
    std::string_view sv = StripWhitespace(line);
    if (sv.empty() || sv[0] == '#') continue;
    std::vector<std::string> fields = StrSplit(sv, '\t');
    auto err = [&](const std::string& msg) {
      return Status::Corruption("line " + std::to_string(lineno) + ": " +
                                msg);
    };
    if (fields[0] == "N") {
      if (fields.size() < 2) return err("node record missing label");
      NodeId v = g->AddNode(fields[1]);
      for (size_t i = 2; i < fields.size(); ++i) {
        size_t eq = fields[i].find('=');
        if (eq == std::string::npos) return err("bad attr " + fields[i]);
        std::string name = fields[i].substr(0, eq);
        std::string raw = fields[i].substr(eq + 1);
        if (raw.size() >= 2 && raw.front() == '"' && raw.back() == '"') {
          g->SetAttr(v, name, Value(raw.substr(1, raw.size() - 2)));
        } else {
          auto n = ParseInt64(raw);
          if (!n) return err("bad integer attr value " + raw);
          g->SetAttr(v, name, Value(*n));
        }
      }
    } else if (fields[0] == "E") {
      if (fields.size() != 4) return err("edge record needs 4 fields");
      auto src = ParseInt64(fields[1]);
      auto dst = ParseInt64(fields[2]);
      if (!src || !dst) return err("bad edge endpoints");
      Status s = g->AddEdge(static_cast<NodeId>(*src),
                            static_cast<NodeId>(*dst), fields[3]);
      if (!s.ok()) return err(s.ToString());
    } else {
      return err("unknown record type " + fields[0]);
    }
  }
  return g;
}

StatusOr<std::unique_ptr<Graph>> LoadGraphFile(const std::string& path,
                                               SchemaPtr schema) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  return ReadGraphText(&in, std::move(schema));
}

}  // namespace ngd
