#include "graph/dictionary.h"

namespace ngd {

uint32_t Dictionary::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

std::optional<uint32_t> Dictionary::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace ngd
