// Immutable CSR snapshot of one view of a Graph.
//
// The live Graph keeps pointer-chased vector<vector<AdjEntry>> adjacency
// plus a global (src, dst, label) hash index — the right shape for the
// batch-update overlay, the wrong shape for the homomorphism hot path
// (paper §6.2): Expand scans an anchor's whole adjacency filtering by
// label, and every closure edge costs a hash probe. A GraphSnapshot
// flattens one view (kOld or kNew) once:
//
//   - out/in neighbor ids in flat arrays, grouped per node by edge label
//     into contiguous ranges ("label-partitioned adjacency"), sorted by
//     neighbor id within a range — Expand touches only the anchor's
//     matching label range, and closure-edge checks become a binary
//     search on the smaller-degree endpoint instead of a hash probe;
//   - attribute tuples in one flat array with per-node offsets;
//   - label → node-id candidate arrays in CSR form (C(u) enumeration).
//
// The overlay state is resolved at build time, so a snapshot serves
// exactly one GraphView and stays valid until the source graph mutates.
// Dect / FindAnyViolation / PDect build one snapshot per call and
// amortize it across every rule in Σ; incremental detection keeps using
// the live overlay graph (its searches are update-local).

#ifndef NGD_GRAPH_SNAPSHOT_H_
#define NGD_GRAPH_SNAPSHOT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/neighborhood.h"

namespace ngd {

class GraphSnapshot {
 public:
  /// Contiguous, ascending run of neighbor (or candidate) node ids.
  /// Neighbor ids are unique within a (node, direction, label) range
  /// because edge identity is (src, dst, label).
  struct IdRange {
    const NodeId* ptr = nullptr;
    size_t count = 0;

    const NodeId* begin() const { return ptr; }
    const NodeId* end() const { return ptr + count; }
    size_t size() const { return count; }
    bool empty() const { return count == 0; }
  };

  /// Materializes `view` of `g`. O(|V| + |E| log d) for max degree d.
  GraphSnapshot(const Graph& g, GraphView view);

  /// Materializes the subgraph of `view` of `g` induced by `include`,
  /// keeping GLOBAL node ids: the id space (and the node-label and
  /// label→candidate arrays, which the binary format requires to cover
  /// every node) stays full-width, but adjacency and attribute tuples are
  /// materialized only for included nodes, and only edges with both
  /// endpoints included survive. This is the fragment CSR of the
  /// fragment-native parallel runtime (parallel/fragment.h): member and
  /// halo nodes carry real adjacency, every other id is an empty husk.
  /// Callers must scope candidate enumeration themselves (the candidate
  /// arrays still list excluded nodes — see match/candidate_index.h's
  /// FragmentCandidates).
  GraphSnapshot(const Graph& g, GraphView view, const NodeSet& include);

  const SchemaPtr& schema() const { return schema_; }
  GraphView view() const { return view_; }
  size_t NumNodes() const { return node_labels_.size(); }
  size_t NumEdges() const { return out_.nbr.size(); }

  LabelId NodeLabel(NodeId v) const { return node_labels_[v]; }
  /// Flat per-node label array (NumNodes() entries, indexed by NodeId) —
  /// the raw form the match expander's block candidate filter gathers
  /// from (match/homomorphism.cc).
  const LabelId* node_labels_data() const { return node_labels_.data(); }

  /// nullptr when the node does not carry the attribute (paper §3
  /// condition (a)); same contract as Graph::GetAttr.
  const Value* GetAttr(NodeId v, AttrId attr) const;

  /// Neighbors w of v with an edge v -[label]-> w (resp. w -[label]-> v).
  IdRange OutNeighbors(NodeId v, LabelId label) const {
    return FindRange(out_, v, label);
  }
  IdRange InNeighbors(NodeId v, LabelId label) const {
    return FindRange(in_, v, label);
  }

  /// Total out/in degree of v in this view (all labels).
  size_t OutDegree(NodeId v) const { return TotalDegree(out_, v); }
  size_t InDegree(NodeId v) const { return TotalDegree(in_, v); }

  /// Edge membership via binary search over the smaller of src's
  /// out-range and dst's in-range for `label`.
  bool HasEdge(NodeId src, NodeId dst, LabelId label) const;

  /// Invokes fn(LabelId, NodeId) for every out-edge v -[label]-> w
  /// (resp. in-edge w -[label]-> v) of v, label-ascending.
  template <typename Fn>
  void ForEachOutEdge(NodeId v, Fn&& fn) const {
    ForEachEdge(out_, v, std::forward<Fn>(fn));
  }
  template <typename Fn>
  void ForEachInEdge(NodeId v, Fn&& fn) const {
    ForEachEdge(in_, v, std::forward<Fn>(fn));
  }

  /// All node ids with the given label, ascending (candidate array).
  IdRange NodesWithLabel(LabelId label) const;
  size_t CandidateCount(LabelId label) const {
    return NodesWithLabel(label).size();
  }

 private:
  /// Binary persistence (graph/snapshot_io.{h,cc}) reads and rebuilds the
  /// raw CSR arrays directly — a loaded snapshot needs no re-sort and no
  /// re-intern — via this codec, the only friend.
  friend class SnapshotCodec;
  GraphSnapshot() = default;

  /// One direction of the adjacency: a two-level CSR. Node v owns the
  /// label groups groups[group_off[v] .. group_off[v+1]), each group a
  /// (label, begin, end) run into `nbr`, label-ascending per node.
  struct Direction {
    std::vector<NodeId> nbr;
    struct LabelGroup {
      LabelId label;
      uint32_t begin;
      uint32_t end;
    };
    std::vector<LabelGroup> groups;
    std::vector<uint32_t> group_off;  // size NumNodes()+1
  };

  GraphSnapshot(const Graph& g, GraphView view, const NodeSet* include);

  template <typename Fn>
  void ForEachEdge(const Direction& d, NodeId v, Fn&& fn) const {
    for (uint32_t gi = d.group_off[v]; gi < d.group_off[v + 1]; ++gi) {
      const Direction::LabelGroup& group = d.groups[gi];
      for (uint32_t i = group.begin; i < group.end; ++i) {
        fn(group.label, d.nbr[i]);
      }
    }
  }

  static size_t TotalDegree(const Direction& d, NodeId v);
  IdRange FindRange(const Direction& d, NodeId v, LabelId label) const;
  static void Build(const Graph& g, GraphView view, bool out,
                    const NodeSet* include, Direction* d);

  SchemaPtr schema_;
  GraphView view_;
  std::vector<LabelId> node_labels_;
  Direction out_;
  Direction in_;
  std::vector<std::pair<AttrId, Value>> attrs_;  // per-node, AttrId-sorted
  std::vector<uint32_t> attr_off_;               // size NumNodes()+1
  std::vector<NodeId> label_nodes_;              // grouped by label
  std::vector<uint32_t> label_off_;              // size num_labels+1
};

}  // namespace ngd

#endif  // NGD_GRAPH_SNAPSHOT_H_
