// Binary snapshot persistence: the on-disk twin of GraphSnapshot.
//
// A snapshot file is a versioned, checksummed, section-based container in
// little-endian byte order. It holds the CSR arrays of one GraphSnapshot
// (label-partitioned adjacency both directions, flat attribute tuples,
// label→node candidate arrays) plus the interned label/attribute
// dictionaries of its schema, so loading is O(sections): one bulk file
// read, a header/table/checksum pass, then memcpy straight into the CSR
// vectors — no text parsing, no re-sort, no re-intern. This is what makes
// "load the graph" cheap enough to amortize detection over repeated runs
// (see the ngdbench `ingest` series and EXPERIMENTS.md §6).
//
// Layout:
//   FileHeader      magic "NGDSNAP1", format version, endian marker, the
//                   GraphView the snapshot materializes, section count,
//                   total file size (truncation check), table checksum
//   SectionEntry[]  per section: id, element size, element count, file
//                   offset, FNV-1a 64 checksum of the payload bytes
//   payload         8-byte-aligned section payloads
//
// Every load failure (bad magic, version or endian mismatch, truncation,
// checksum mismatch, structural invariant breakage) returns kCorruption;
// files from a schema that conflicts with the supplied one also fail
// rather than silently remapping ids.

#ifndef NGD_GRAPH_SNAPSHOT_IO_H_
#define NGD_GRAPH_SNAPSHOT_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "graph/graph.h"
#include "graph/snapshot.h"
#include "util/status.h"

namespace ngd {

inline constexpr uint32_t kSnapshotFormatVersion = 1;
inline constexpr char kSnapshotMagic[8] = {'N', 'G', 'D', 'S',
                                           'N', 'A', 'P', '1'};

/// Serializes the snapshot (with the full label/attr dictionaries of its
/// schema) into an in-memory snapshot file image.
[[nodiscard]] StatusOr<std::string> SerializeSnapshot(const GraphSnapshot& snap);

/// Parses a snapshot file image. Dictionary names are replayed into
/// `schema` in id order: a freshly created Schema always works; a
/// pre-populated one must agree on every id or the load fails with
/// kCorruption (no silent remapping).
[[nodiscard]] StatusOr<std::unique_ptr<GraphSnapshot>> DeserializeSnapshot(
    std::string_view bytes, SchemaPtr schema);

[[nodiscard]] Status SaveSnapshotFile(const GraphSnapshot& snap, const std::string& path);
[[nodiscard]] StatusOr<std::unique_ptr<GraphSnapshot>> LoadSnapshotFile(
    const std::string& path, SchemaPtr schema);

/// True iff the file starts with the snapshot magic (format sniffing for
/// tools that accept both TSV and snapshot graph inputs).
bool SniffSnapshotFile(const std::string& path);

/// Rebuilds a live overlay Graph (all edges kBase) from a snapshot, e.g.
/// to feed incremental detection — which needs a mutable graph to carry
/// ΔG — from a snapshot-file input. O(|V| + |E|) plus the edge-index
/// hashing any live graph pays.
[[nodiscard]] StatusOr<std::unique_ptr<Graph>> MaterializeGraph(const GraphSnapshot& snap);

/// Structural digest of the snapshot content (node labels, attribute
/// tuples including string bytes, out-adjacency with labels). Two
/// snapshots of structurally equal graphs under schemas with identical
/// intern order hash equal; ingestion paths (TSV sequential, TSV
/// parallel, binary load) are cross-checked against it.
uint64_t SnapshotFingerprint(const GraphSnapshot& snap);

}  // namespace ngd

#endif  // NGD_GRAPH_SNAPSHOT_IO_H_
