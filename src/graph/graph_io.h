// Plain-text TSV graph serialization and the parallel ingest pipeline.
//
// Format (one record per line, UTF-8, '#' comments allowed):
//   N <label> [<attr>=<int>|<attr>="<string>"]...     node (ids implicit, 0-based)
//   E <src> <dst> <label>                             base edge
//
// String attribute values are always double-quoted and escaped: `\\`,
// `\"`, `\t`, `\n`, `\r` are the only escapes, so a value containing
// quotes, tabs or newlines round-trips byte-exactly. Label and attribute
// names are identifiers: they must be non-empty and free of whitespace
// and control characters, and attribute names additionally must not
// contain '=' or '"' (the record syntax could not represent them);
// WriteGraphText rejects offending graphs with kInvalidArgument and the
// readers reject offending files with kCorruption plus the line number.
//
// Edge endpoints are validated against the FINAL node count of the file:
// negative ids and ids >= the number of N records fail with kCorruption
// and the line number (no unsigned wraparound), while forward references
// to nodes declared later in the file are allowed — a consequence of the
// two-phase chunked parser below, and handy for hand-written fixtures.
//
// Ingestion is chunk-parallel: the input splits into line-aligned chunks,
// each parsed by one thread into a shard with thread-local label/attr
// intern tables, then the shards merge deterministically in file order —
// the resulting graph, schema intern order and first-reported error are
// identical regardless of thread count (ids equal a one-thread parse).
// The loader interns labels/attributes into the supplied schema. This is
// the interchange format for shipping rule-discovered datasets between
// the examples, benches and ngdcheck; see graph/snapshot_io.h for the
// binary snapshot format that avoids re-parsing altogether.

#ifndef NGD_GRAPH_GRAPH_IO_H_
#define NGD_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

#include "graph/graph.h"
#include "util/status.h"

namespace ngd {

struct IngestOptions {
  /// Parser threads; 0 = std::thread::hardware_concurrency().
  int threads = 0;
  /// Inputs smaller than this parse on the calling thread (spawn cost
  /// dominates below it).
  size_t min_parallel_bytes = 1 << 16;
};

/// Writes `view` of `g` (default: kNew, the pending overlay folded into
/// the output — the post-ΔG graph). Unit updates are edge-level (paper
/// §5.2), so node and attribute emission is view-invariant by
/// construction; the edge records are filtered to exactly the edges
/// visible in `view`.
[[nodiscard]] Status WriteGraphText(const Graph& g, std::ostream* os,
                      GraphView view = GraphView::kNew);
[[nodiscard]] Status SaveGraphFile(const Graph& g, const std::string& path,
                     GraphView view = GraphView::kNew);

/// Reads a whole file into memory with one sized bulk read (shared by
/// the TSV loader and the binary snapshot loader).
[[nodiscard]] StatusOr<std::string> ReadFileBytes(const std::string& path);

/// Parses a graph in the TSV format above (chunk-parallel per `opts`).
[[nodiscard]] StatusOr<std::unique_ptr<Graph>> ParseGraphText(std::string_view text,
                                                SchemaPtr schema,
                                                const IngestOptions& opts = {});
[[nodiscard]] StatusOr<std::unique_ptr<Graph>> ReadGraphText(std::istream* is,
                                               SchemaPtr schema);
[[nodiscard]] StatusOr<std::unique_ptr<Graph>> LoadGraphFile(const std::string& path,
                                               SchemaPtr schema,
                                               const IngestOptions& opts = {});

}  // namespace ngd

#endif  // NGD_GRAPH_GRAPH_IO_H_
