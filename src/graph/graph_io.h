// Plain-text TSV graph serialization.
//
// Format (one record per line, UTF-8, '#' comments allowed):
//   N <label> [<attr>=<int>|<attr>="<string>"]...     node (ids implicit, 0-based)
//   E <src> <dst> <label>                             base edge
// The loader interns labels/attributes into the supplied schema. This is
// the interchange format for shipping rule-discovered datasets between the
// examples and benches.

#ifndef NGD_GRAPH_GRAPH_IO_H_
#define NGD_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace ngd {

/// Writes the kNew view of `g` (pending overlay folded into the output).
Status WriteGraphText(const Graph& g, std::ostream* os);
Status SaveGraphFile(const Graph& g, const std::string& path);

/// Parses a graph in the TSV format above.
StatusOr<std::unique_ptr<Graph>> ReadGraphText(std::istream* is,
                                               SchemaPtr schema);
StatusOr<std::unique_ptr<Graph>> LoadGraphFile(const std::string& path,
                                               SchemaPtr schema);

}  // namespace ngd

#endif  // NGD_GRAPH_GRAPH_IO_H_
