// String interning for labels (Γ) and attributes (Θ).
//
// A Schema bundles the two dictionaries shared by a graph and the patterns
// and NGDs evaluated against it, so label/attribute identity is a cheap
// integer comparison everywhere in the matching engine.

#ifndef NGD_GRAPH_DICTIONARY_H_
#define NGD_GRAPH_DICTIONARY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ngd {

using LabelId = uint32_t;
using AttrId = uint32_t;

/// The reserved wildcard label '_' always interns to id 0 in the label
/// dictionary; it matches any node label (paper §2, graph patterns).
inline constexpr LabelId kWildcardLabel = 0;

class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the id for `name`, interning it if new.
  uint32_t Intern(std::string_view name);

  /// Returns the id for `name` if already interned.
  std::optional<uint32_t> Find(std::string_view name) const;

  /// Requires id < size().
  const std::string& NameOf(uint32_t id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> index_;
};

/// Shared label/attribute alphabets. The label dictionary pre-interns the
/// wildcard '_' at id 0.
class Schema {
 public:
  Schema() { labels_.Intern("_"); }

  Dictionary& labels() { return labels_; }
  const Dictionary& labels() const { return labels_; }
  Dictionary& attrs() { return attrs_; }
  const Dictionary& attrs() const { return attrs_; }

  LabelId InternLabel(std::string_view name) { return labels_.Intern(name); }
  AttrId InternAttr(std::string_view name) { return attrs_.Intern(name); }

  static std::shared_ptr<Schema> Create() {
    return std::make_shared<Schema>();
  }

 private:
  Dictionary labels_;
  Dictionary attrs_;
};

using SchemaPtr = std::shared_ptr<Schema>;

}  // namespace ngd

#endif  // NGD_GRAPH_DICTIONARY_H_
