#include "graph/error_injector.h"

#include <algorithm>

namespace ngd {

namespace {
// All planter edges are base edges on fresh nodes, so AddEdge cannot fail;
// assert-discard keeps call sites readable.
void MustAdd(Status s) {
  (void)s;
  assert(s.ok());
}
}  // namespace

NodeId ErrorInjector::AddIntNode(std::string_view label, int64_t val) {
  NodeId v = g_->AddNode(label);
  g_->SetAttr(v, "val", Value(val));
  return v;
}

MotifStats ErrorInjector::PlantLifespan(size_t count, double error_rate) {
  MotifStats stats;
  for (size_t i = 0; i < count; ++i) {
    NodeId org = g_->AddNode("org");
    int64_t created = rng_.UniformInt(700000, 730000);  // days since epoch 0
    bool bad = rng_.Bernoulli(error_rate);
    int64_t destroyed =
        bad ? created - rng_.UniformInt(1, 20000)
            : created + rng_.UniformInt(400, 40000);
    NodeId c = AddIntNode("date", created);
    NodeId d = AddIntNode("date", destroyed);
    MustAdd(g_->AddEdge(org, c, "wasCreatedOnDate"));
    MustAdd(g_->AddEdge(org, d, "wasDestroyedOnDate"));
    ++stats.instances;
    stats.errors += bad ? 1 : 0;
  }
  return stats;
}

MotifStats ErrorInjector::PlantPopulation(size_t count, double error_rate) {
  MotifStats stats;
  for (size_t i = 0; i < count; ++i) {
    NodeId area = g_->AddNode("area");
    int64_t female = rng_.UniformInt(100, 100000);
    int64_t male = rng_.UniformInt(100, 100000);
    bool bad = rng_.Bernoulli(error_rate);
    int64_t total = female + male + (bad ? rng_.UniformInt(1, 5000) : 0);
    MustAdd(g_->AddEdge(area, AddIntNode("integer", female),
                        "femalePopulation"));
    MustAdd(g_->AddEdge(area, AddIntNode("integer", male), "malePopulation"));
    MustAdd(g_->AddEdge(area, AddIntNode("integer", total),
                        "populationTotal"));
    ++stats.instances;
    stats.errors += bad ? 1 : 0;
  }
  return stats;
}

MotifStats ErrorInjector::PlantPopulationRank(size_t count,
                                              double error_rate) {
  MotifStats stats;
  for (size_t i = 0; i < count; ++i) {
    NodeId region = g_->AddNode("place");
    NodeId x = g_->AddNode("place");
    NodeId y = g_->AddNode("place");
    MustAdd(g_->AddEdge(x, region, "partof"));
    MustAdd(g_->AddEdge(y, region, "partof"));
    int64_t pop_x = rng_.UniformInt(10000, 400000);
    int64_t pop_y = pop_x + rng_.UniformInt(1000, 100000);  // y more populous
    int64_t rank_y = rng_.UniformInt(1, 40);
    bool bad = rng_.Bernoulli(error_rate);
    // Correct data: more population => numerically smaller (better) rank,
    // so x (smaller population) must rank strictly behind y.
    int64_t rank_x = bad ? rank_y - rng_.UniformInt(0, rank_y > 1 ? rank_y - 1 : 0)
                         : rank_y + rng_.UniformInt(1, 60);
    NodeId m1 = AddIntNode("integer", pop_x);
    NodeId m2 = AddIntNode("integer", pop_y);
    NodeId n1 = AddIntNode("integer", rank_x);
    NodeId n2 = AddIntNode("integer", rank_y);
    MustAdd(g_->AddEdge(x, m1, "population"));
    MustAdd(g_->AddEdge(y, m2, "population"));
    MustAdd(g_->AddEdge(x, n1, "populationRank"));
    MustAdd(g_->AddEdge(y, n2, "populationRank"));
    // Census date shared by both population readings (Fig 1 G3).
    NodeId census = AddIntNode("date", 20140401);
    MustAdd(g_->AddEdge(m1, census, "date"));
    MustAdd(g_->AddEdge(m2, census, "date"));
    ++stats.instances;
    stats.errors += bad ? 1 : 0;
  }
  return stats;
}

MotifStats ErrorInjector::PlantFakeAccounts(size_t count, double error_rate) {
  MotifStats stats;
  for (size_t i = 0; i < count; ++i) {
    NodeId company = g_->AddNode("company");
    NodeId real = g_->AddNode("account");
    NodeId other = g_->AddNode("account");
    MustAdd(g_->AddEdge(real, company, "keys"));
    MustAdd(g_->AddEdge(other, company, "keys"));
    int64_t followers = rng_.UniformInt(40000, 120000);
    int64_t following = rng_.UniformInt(10000, 40000);
    MustAdd(g_->AddEdge(real, AddIntNode("integer", followers), "follower"));
    MustAdd(g_->AddEdge(real, AddIntNode("integer", following), "following"));
    MustAdd(g_->AddEdge(real, AddIntNode("boolean", 1), "status"));
    bool bad = rng_.Bernoulli(error_rate);
    // The suspicious account always has a big deficit; the *error* is its
    // status claiming it is real (status = 1) despite the deficit.
    int64_t f2 = rng_.UniformInt(0, 50);
    int64_t g2 = rng_.UniformInt(0, 50);
    MustAdd(g_->AddEdge(other, AddIntNode("integer", f2), "follower"));
    MustAdd(g_->AddEdge(other, AddIntNode("integer", g2), "following"));
    MustAdd(g_->AddEdge(other, AddIntNode("boolean", bad ? 1 : 0), "status"));
    ++stats.instances;
    stats.errors += bad ? 1 : 0;
  }
  return stats;
}

MotifStats ErrorInjector::PlantLivingPeople(size_t count, double error_rate) {
  MotifStats stats;
  for (size_t i = 0; i < count; ++i) {
    NodeId person = g_->AddNode("person");
    bool bad = rng_.Bernoulli(error_rate);
    int64_t birth = bad ? rng_.UniformInt(1500, 1799)
                        : rng_.UniformInt(1930, 2005);
    NodeId y = AddIntNode("year", birth);
    NodeId cat = g_->AddNode("category");
    g_->SetAttr(cat, "val", Value("living people"));
    MustAdd(g_->AddEdge(person, y, "birthYear"));
    MustAdd(g_->AddEdge(person, cat, "category"));
    ++stats.instances;
    stats.errors += bad ? 1 : 0;
  }
  return stats;
}

MotifStats ErrorInjector::PlantOlympicNations(size_t count,
                                              double error_rate) {
  MotifStats stats;
  for (size_t i = 0; i < count; ++i) {
    NodeId event = g_->AddNode("competition");
    g_->SetAttr(event, "type", Value("Olympic"));
    int64_t competitors = rng_.UniformInt(20, 500);
    bool bad = rng_.Bernoulli(error_rate);
    int64_t nations = bad ? competitors + rng_.UniformInt(1, 50)
                          : rng_.UniformInt(1, competitors);
    MustAdd(g_->AddEdge(event, AddIntNode("integer", competitors),
                        "competitors"));
    MustAdd(g_->AddEdge(event, AddIntNode("integer", nations), "nations"));
    ++stats.instances;
    stats.errors += bad ? 1 : 0;
  }
  return stats;
}

MotifStats ErrorInjector::PlantF1Wins(size_t count, double error_rate) {
  MotifStats stats;
  for (size_t i = 0; i < count; ++i) {
    NodeId team = g_->AddNode("team");
    NodeId d1 = g_->AddNode("driver");
    NodeId d2 = g_->AddNode("driver");
    NodeId year = AddIntNode("year", rng_.UniformInt(1990, 2017));
    MustAdd(g_->AddEdge(d1, team, "team"));
    MustAdd(g_->AddEdge(d2, team, "team"));
    MustAdd(g_->AddEdge(team, year, "year"));
    MustAdd(g_->AddEdge(d1, year, "year"));
    MustAdd(g_->AddEdge(d2, year, "year"));
    int64_t w1 = rng_.UniformInt(0, 6);
    int64_t w2 = rng_.UniformInt(0, 6);
    bool bad = rng_.Bernoulli(error_rate);
    if (bad && w1 + w2 == 0) {
      w1 = 1;  // guarantee the inconsistency is actually present
    }
    // Clean instances must survive homomorphic folding too: the match
    // w1 = w2 = d1 requires team wins >= 2 * max(d1, d2), not just the
    // sum of the two distinct drivers.
    int64_t team_wins =
        bad ? (w1 + w2 > 0 ? rng_.UniformInt(0, w1 + w2 - 1) : 0)
            : 2 * std::max(w1, w2) + rng_.UniformInt(0, 4);
    g_->SetAttr(team, "numberOfWins", Value(team_wins));
    g_->SetAttr(d1, "numberOfWins", Value(w1));
    g_->SetAttr(d2, "numberOfWins", Value(w2));
    ++stats.instances;
    stats.errors += bad ? 1 : 0;
  }
  return stats;
}

MotifStats ErrorInjector::PlantConstantBinding(size_t count,
                                               double error_rate) {
  MotifStats stats;
  for (size_t i = 0; i < count; ++i) {
    NodeId city = g_->AddNode("capital");
    NodeId country = g_->AddNode("country");
    MustAdd(g_->AddEdge(city, country, "locatedIn"));
    bool bad = rng_.Bernoulli(error_rate);
    g_->SetAttr(city, "kind",
                Value(bad ? std::string("village")
                          : std::string("capital-city")));
    ++stats.instances;
    stats.errors += bad ? 1 : 0;
  }
  return stats;
}

}  // namespace ngd
