#include "graph/generators.h"

#include <string>
#include <vector>

#include "util/rng.h"

namespace ngd {

std::unique_ptr<Graph> GenerateGraph(const GraphGenConfig& config,
                                     SchemaPtr schema) {
  Rng rng(config.seed);
  auto graph = std::make_unique<Graph>(schema);

  std::vector<LabelId> node_labels(config.num_node_labels);
  for (size_t i = 0; i < config.num_node_labels; ++i) {
    node_labels[i] = schema->InternLabel("t" + std::to_string(i));
  }
  std::vector<LabelId> edge_labels(config.num_edge_labels);
  for (size_t i = 0; i < config.num_edge_labels; ++i) {
    edge_labels[i] = schema->InternLabel("e" + std::to_string(i));
  }
  std::vector<AttrId> attrs(config.num_attrs);
  for (size_t i = 0; i < config.num_attrs; ++i) {
    attrs[i] = schema->InternAttr("a" + std::to_string(i));
  }

  // Nodes: skewed label assignment, attributes keyed off the label rank so
  // that same-labeled nodes carry the same attribute names (as real typed
  // entities do) with random values.
  for (size_t i = 0; i < config.num_nodes; ++i) {
    size_t label_rank = rng.Zipf(config.num_node_labels, config.label_skew);
    NodeId v = graph->AddNode(node_labels[label_rank]);
    for (size_t k = 0; k < config.attrs_per_node; ++k) {
      AttrId a = attrs[(label_rank + k) % config.num_attrs];
      graph->SetAttr(v, a,
                     Value(rng.UniformInt(config.value_min,
                                          config.value_max)));
    }
  }

  // Edges: endpoints by mixture of uniform and preferential attachment
  // (repeat-list technique), labels skewed; (src,dst,label) deduplicated
  // by Graph::AddEdge.
  std::vector<NodeId> repeat_list;
  repeat_list.reserve(config.num_edges * 2);
  size_t added = 0;
  size_t attempts = 0;
  const size_t max_attempts = config.num_edges * 10 + 1000;
  const int64_t n = static_cast<int64_t>(config.num_nodes);
  while (added < config.num_edges && attempts < max_attempts) {
    ++attempts;
    auto pick = [&]() -> NodeId {
      if (!repeat_list.empty() && rng.Bernoulli(config.pref_attach)) {
        return rng.PickFrom(repeat_list);
      }
      return static_cast<NodeId>(rng.UniformInt(0, n - 1));
    };
    NodeId src = pick();
    NodeId dst = pick();
    if (src == dst) continue;
    size_t lrank = rng.Zipf(config.num_edge_labels, config.label_skew);
    if (graph->AddEdge(src, dst, edge_labels[lrank]).ok()) {
      ++added;
      repeat_list.push_back(src);
      repeat_list.push_back(dst);
    }
  }
  return graph;
}

GraphGenConfig DBpediaLikeConfig(double scale, uint64_t seed) {
  GraphGenConfig c;
  c.name = "dbpedia-like";
  c.num_nodes = static_cast<size_t>(28.0e6 * scale);
  c.num_edges = static_cast<size_t>(33.4e6 * scale);
  c.num_node_labels = 200;
  c.num_edge_labels = 160;
  c.num_attrs = 40;
  c.attrs_per_node = 3;
  c.label_skew = 0.9;
  c.pref_attach = 0.35;  // knowledge graphs: hubs exist but modest skew
  c.seed = seed;
  return c;
}

GraphGenConfig Yago2LikeConfig(double scale, uint64_t seed) {
  GraphGenConfig c;
  c.name = "yago2-like";
  c.num_nodes = static_cast<size_t>(3.5e6 * scale);
  c.num_edges = static_cast<size_t>(7.35e6 * scale);
  c.num_node_labels = 13;
  c.num_edge_labels = 36;
  c.num_attrs = 20;
  c.attrs_per_node = 3;
  c.label_skew = 0.7;
  c.pref_attach = 0.3;
  c.seed = seed;
  return c;
}

GraphGenConfig PokecLikeConfig(double scale, uint64_t seed) {
  GraphGenConfig c;
  c.name = "pokec-like";
  c.num_nodes = static_cast<size_t>(1.63e6 * scale);
  c.num_edges = static_cast<size_t>(30.6e6 * scale);
  c.num_node_labels = 269;
  c.num_edge_labels = 11;
  c.num_attrs = 30;
  c.attrs_per_node = 4;
  c.label_skew = 0.8;
  c.pref_attach = 0.5;  // social network: heavy-tailed degrees
  c.seed = seed;
  return c;
}

GraphGenConfig SyntheticConfig(size_t num_nodes, size_t num_edges,
                               uint64_t seed) {
  GraphGenConfig c;
  c.name = "synthetic";
  c.num_nodes = num_nodes;
  c.num_edges = num_edges;
  c.num_node_labels = 500;  // paper: alphabet L of 500 symbols
  c.num_edge_labels = 50;
  c.num_attrs = 25;
  c.attrs_per_node = 3;
  c.value_min = 0;
  c.value_max = 1999;  // paper: 2000 integers
  c.label_skew = 0.6;
  c.pref_attach = 0.3;
  c.seed = seed;
  return c;
}

}  // namespace ngd
