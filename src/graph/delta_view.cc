#include "graph/delta_view.h"

#include <cassert>
#include <optional>
#include <utility>

namespace ngd {

void DeltaView::BuildSide(std::vector<std::pair<NodeId, DeltaEntry>>* flat,
                          size_t num_nodes, Side* side) {
  // (node, label, other) sort + unique: duplicate records in the batch
  // collapse to one entry, matching UpdateIndex's duplicate suppression.
  std::sort(flat->begin(), flat->end());
  flat->erase(std::unique(flat->begin(), flat->end()), flat->end());

  side->off.assign(num_nodes + 1, 0);
  side->entries.reserve(flat->size());
  for (const auto& [node, entry] : *flat) {
    side->entries.push_back(entry);
    ++side->off[node + 1];
  }
  for (size_t v = 0; v < num_nodes; ++v) side->off[v + 1] += side->off[v];
}

DeltaView::DeltaView(const GraphSnapshot& base, const Graph& g,
                     const UpdateBatch& batch)
    : base_(&base),
      g_(&g),
      base_nodes_(base.NumNodes()),
      num_nodes_(g.NumNodes()) {
  assert(base_nodes_ <= num_nodes_ &&
         "base snapshot is newer than the live graph");

  std::vector<std::pair<NodeId, DeltaEntry>> out_ins, out_del, in_ins, in_del;
  for (const UnitUpdate& u : batch.updates) {
    if (u.src >= num_nodes_ || u.dst >= num_nodes_) continue;
    // Only updates whose effect survives in the overlay count; anything
    // else (delete+reinsert of one edge, delete of a pending insertion)
    // cancelled out within the batch. Mirrors UpdateIndex.
    std::optional<EdgeState> state = g.EdgeStateOf(u.src, u.dst, u.label);
    if (!state.has_value()) continue;
    const bool is_insert = u.kind == UpdateKind::kInsert;
    if (is_insert && *state != EdgeState::kInserted) continue;
    if (!is_insert && *state != EdgeState::kDeleted) continue;
    auto& out_side = is_insert ? out_ins : out_del;
    auto& in_side = is_insert ? in_ins : in_del;
    out_side.push_back({u.src, DeltaEntry{u.label, u.dst}});
    in_side.push_back({u.dst, DeltaEntry{u.label, u.src}});
  }

  BuildSide(&out_ins, num_nodes_, &out_ins_);
  BuildSide(&out_del, num_nodes_, &out_del_);
  BuildSide(&in_ins, num_nodes_, &in_ins_);
  BuildSide(&in_del, num_nodes_, &in_del_);

  touched_.assign(num_nodes_, 0);
  for (const auto& [node, entry] : out_ins) touched_[node] |= kTouchedOutIns;
  for (const auto& [node, entry] : out_del) touched_[node] |= kTouchedOutDel;
  for (const auto& [node, entry] : in_ins) touched_[node] |= kTouchedInIns;
  for (const auto& [node, entry] : in_del) touched_[node] |= kTouchedInDel;
}

}  // namespace ngd
