// Seeded real-world-style inconsistencies (Exp-5 substrate).
//
// The paper's effectiveness study (§7 Exp-5) counts errors NGDs catch in
// DBpedia/YAGO2/Pokec: 415 / 212 / 568, of which 92% are beyond GFDs.
// Those datasets are not available offline, so this injector plants the
// exact motifs the paper reports — with a controlled error rate — into a
// synthetic background graph:
//   - lifespan        (Fig 1 G1 / φ1): destroyed-before-created entities
//   - population sum  (Fig 1 G2 / φ2): female + male ≠ total
//   - population rank (Fig 1 G3 / φ3): larger population, worse rank
//   - fake accounts   (Fig 1 G4 / φ4): follower/following gap vs status
//   - living people   (Exp-5 NGD1): birth year < 1800 yet "living people"
//   - olympic         (Exp-5 NGD2): more nations than competitors
//   - F1 wins         (Exp-5 NGD3): drivers' wins exceed their team's
//   - constant bind   (GFD-expressible control: wrong constant attribute)
// Each planter returns how many instances and how many true errors were
// planted, giving bench_exp5 ground truth for precision/recall.

#ifndef NGD_GRAPH_ERROR_INJECTOR_H_
#define NGD_GRAPH_ERROR_INJECTOR_H_

#include <cstdint>
#include <string_view>

#include "graph/graph.h"
#include "util/rng.h"

namespace ngd {

struct MotifStats {
  size_t instances = 0;
  size_t errors = 0;
};

class ErrorInjector {
 public:
  ErrorInjector(Graph* g, uint64_t seed) : g_(g), rng_(seed) {}

  /// org -[wasCreatedOnDate]-> date, org -[wasDestroyedOnDate]-> date;
  /// error: destroyed.val - created.val < min_lifespan_days.
  MotifStats PlantLifespan(size_t count, double error_rate);

  /// area -[femalePopulation|malePopulation|populationTotal]-> integer;
  /// error: female + male != total.
  MotifStats PlantPopulation(size_t count, double error_rate);

  /// Two places in one region with population and populationRank nodes;
  /// error: x.population < y.population but x.rank < y.rank (better rank
  /// despite smaller population).
  MotifStats PlantPopulationRank(size_t count, double error_rate);

  /// Two accounts keying one company with follower/following/status;
  /// error: account with big follower+following deficit has status 1.
  MotifStats PlantFakeAccounts(size_t count, double error_rate);

  /// person -[birthYear]-> year, person -[category]-> category;
  /// error: year < 1800 and category value "living people".
  MotifStats PlantLivingPeople(size_t count, double error_rate);

  /// competition -[nations|competitors]-> integer, type "Olympic";
  /// error: nations > competitors.
  MotifStats PlantOlympicNations(size_t count, double error_rate);

  /// team + two drivers with numberOfWins in the same year;
  /// error: driver wins sum exceeds team wins.
  MotifStats PlantF1Wins(size_t count, double error_rate);

  /// GFD-expressible control motif: capital -[locatedIn]-> country must
  /// carry kind = "capital-city"; error: wrong constant.
  MotifStats PlantConstantBinding(size_t count, double error_rate);

 private:
  NodeId AddIntNode(std::string_view label, int64_t val);

  Graph* g_;
  Rng rng_;
};

}  // namespace ngd

#endif  // NGD_GRAPH_ERROR_INJECTOR_H_
