// DeltaView: an UpdateBatch overlaid on an immutable base GraphSnapshot.
//
// Incremental detection (paper §6.2) needs both graph views at once, and
// its searches live in the d_Σ-neighborhood of ΔG — far too little work to
// amortize rebuilding a CSR snapshot per batch. A DeltaView keeps the CSR
// layout on the hot path anyway by overlaying the batch on a snapshot of
// the base graph G (the kOld view, built once per commit epoch and reused
// across batches):
//
//   kOld — the base snapshot verbatim. Inserted edges are absent from the
//          base by construction; deleted edges are base edges, still
//          visible in G.
//   kNew — the base with ΔG⁻ edges masked and ΔG⁺ edges merged in, both
//          from per-node (label, neighbor)-sorted delta ranges.
//
// Pivot expansion therefore still gets label-range scans and id-sorted
// closure checks; the delta ranges are tiny (O(|ΔG|) total), so masking
// costs a binary search only on nodes ΔG actually touched. Nodes created
// by the batch (id ≥ base.NumNodes()) read labels/attributes from the
// live graph and draw their adjacency purely from the delta ranges.
//
// Like UpdateIndex, construction keeps only updates whose effect survives
// in the overlay of `g` (delete+reinsert of one edge cancels out), so the
// view agrees exactly with the live overlay graph's two views.
//
// Neighbor iteration is exposed both whole and as index slices over a
// stable sequence — positions [0, B) are the base label range (deleted
// entries skipped), positions [B, B+I) the inserted entries — so
// PIncDect's work-unit splitting can partition a logical adjacency list
// the same way it partitions a live one.

#ifndef NGD_GRAPH_DELTA_VIEW_H_
#define NGD_GRAPH_DELTA_VIEW_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/snapshot.h"
#include "graph/updates.h"

namespace ngd {

class DeltaView {
 public:
  /// Overlays `batch` (already applied to `g` as the pending overlay) on
  /// `base`, a snapshot of the pre-update graph G: either built before
  /// the batch was applied, or GraphSnapshot(g, GraphView::kOld) after.
  /// The view stays valid until `g` mutates beyond the pending batch.
  DeltaView(const GraphSnapshot& base, const Graph& g,
            const UpdateBatch& batch);

  const SchemaPtr& schema() const { return base_->schema(); }
  const GraphSnapshot& base() const { return *base_; }
  size_t NumNodes() const { return num_nodes_; }
  /// Effective delta entries indexed (both directions, so 2·|ΔG_eff|).
  size_t NumDeltaEntries() const {
    return out_ins_.entries.size() + out_del_.entries.size() +
           in_ins_.entries.size() + in_del_.entries.size();
  }

  LabelId NodeLabel(NodeId v) const {
    return v < base_nodes_ ? base_->NodeLabel(v) : g_->NodeLabel(v);
  }

  /// nullptr when the node does not carry the attribute; same contract as
  /// Graph::GetAttr. ΔG is edge-only (paper §5.2), so base nodes read the
  /// snapshot and only batch-created nodes fall back to the live graph.
  const Value* GetAttr(NodeId v, AttrId attr) const {
    return v < base_nodes_ ? base_->GetAttr(v, attr) : g_->GetAttr(v, attr);
  }

  bool HasEdge(NodeId src, NodeId dst, LabelId label, GraphView view) const {
    if (view == GraphView::kNew &&
        (touched_[src] & (kTouchedOutIns | kTouchedOutDel)) != 0) {
      if (SideContains(out_ins_, src, label, dst)) return true;
      if (SideContains(out_del_, src, label, dst)) return false;
    }
    return src < base_nodes_ && dst < base_nodes_ &&
           base_->HasEdge(src, dst, label);
  }

  /// True iff (src, dst, label) is an effective ΔG⁺ (insert_side) or ΔG⁻
  /// entry of this batch. One byte load from the cache-resident touched
  /// bitmap rejects the untouched nodes that dominate — which lets pivot
  /// filters and canonicality checks treat base edges as non-updates
  /// without probing the update hash index (duplicate suppression only
  /// ever has to rank *update* edges; see DeltaViewPivotEdgeFilter).
  bool IsDeltaEdge(bool insert_side, NodeId src, NodeId dst,
                   LabelId label) const {
    if (!(touched_[src] & (insert_side ? kTouchedOutIns : kTouchedOutDel))) {
      return false;
    }
    return SideContains(insert_side ? out_ins_ : out_del_, src, label, dst);
  }

  /// Length of the sliceable neighbor sequence of (v, direction, label):
  /// base label range plus (in kNew) the inserted entries. Deleted base
  /// entries still occupy positions — they are skipped at iteration — so
  /// slice bounds stay stable across views.
  size_t NeighborSeqLen(NodeId v, bool out, LabelId label,
                        GraphView view) const {
    size_t len = BaseRange(v, out, label).size();
    if (view == GraphView::kNew &&
        (touched_[v] & (out ? kTouchedOutIns : kTouchedInIns)) != 0) {
      len += SideRange(out ? out_ins_ : in_ins_, v, label).size();
    }
    return len;
  }

  /// Invokes fn(NodeId) -> bool over positions [begin, end) of the
  /// neighbor sequence; fn returning false aborts. Returns false iff
  /// aborted.
  template <typename Fn>
  bool ForEachNeighborSlice(NodeId v, bool out, LabelId label,
                            GraphView view, size_t begin, size_t end,
                            Fn&& fn) const {
    const GraphSnapshot::IdRange base = BaseRange(v, out, label);
    const size_t base_end = std::min(end, base.size());
    if (view == GraphView::kOld) {
      for (size_t i = begin; i < base_end; ++i) {
        if (!fn(base.ptr[i])) return false;
      }
      return true;
    }
    const uint8_t touched = touched_[v];
    EntrySpan del;
    if ((touched & (out ? kTouchedOutDel : kTouchedInDel)) != 0) {
      del = SideRange(out ? out_del_ : in_del_, v, label);
    }
    for (size_t i = begin; i < base_end; ++i) {
      const NodeId w = base.ptr[i];
      if (!del.empty() && SpanContains(del, w)) continue;  // masked by ΔG⁻
      if (!fn(w)) return false;
    }
    EntrySpan ins;
    if ((touched & (out ? kTouchedOutIns : kTouchedInIns)) != 0) {
      ins = SideRange(out ? out_ins_ : in_ins_, v, label);
    }
    const size_t ins_begin = begin > base.size() ? begin - base.size() : 0;
    const size_t ins_end = std::min(end - std::min(end, base.size()),
                                    ins.size());
    for (size_t i = ins_begin; i < ins_end; ++i) {
      if (!fn(ins.first[i].other)) return false;
    }
    return true;
  }

  template <typename Fn>
  bool ForEachNeighbor(NodeId v, bool out, LabelId label, GraphView view,
                       Fn&& fn) const {
    return ForEachNeighborSlice(v, out, label, view, 0,
                                NeighborSeqLen(v, out, label, view),
                                std::forward<Fn>(fn));
  }

  /// Candidate enumeration C(u). Node existence is view-independent (the
  /// overlay tracks edge state only), so both views share the candidate
  /// arrays: the base snapshot's label→nodes CSR plus any batch-created
  /// nodes.
  size_t CandidateCount(LabelId label) const {
    size_t n = base_->NodesWithLabel(label).size();
    for (NodeId v = static_cast<NodeId>(base_nodes_); v < num_nodes_; ++v) {
      n += g_->NodeLabel(v) == label ? 1 : 0;
    }
    return n;
  }

  template <typename Fn>
  bool ForEachCandidate(LabelId label, Fn&& fn) const {
    for (NodeId v : base_->NodesWithLabel(label)) {
      if (!fn(v)) return false;
    }
    for (NodeId v = static_cast<NodeId>(base_nodes_); v < num_nodes_; ++v) {
      if (g_->NodeLabel(v) == label && !fn(v)) return false;
    }
    return true;
  }

 private:
  enum : uint8_t {
    kTouchedOutIns = 1,
    kTouchedOutDel = 2,
    kTouchedInIns = 4,
    kTouchedInDel = 8,
  };

  /// One entry of ΔG, keyed for per-node label-range lookup.
  struct DeltaEntry {
    LabelId label;
    NodeId other;

    bool operator<(const DeltaEntry& o) const {
      return label != o.label ? label < o.label : other < o.other;
    }
    bool operator==(const DeltaEntry& o) const {
      return label == o.label && other == o.other;
    }
  };
  struct EntrySpan {
    const DeltaEntry* first = nullptr;
    const DeltaEntry* last = nullptr;

    size_t size() const { return static_cast<size_t>(last - first); }
    bool empty() const { return first == last; }
  };
  /// One direction of one delta sign: per-node (label, other)-sorted
  /// entries in CSR form.
  struct Side {
    std::vector<DeltaEntry> entries;
    std::vector<uint32_t> off;  // size NumNodes()+1
  };

  static void BuildSide(std::vector<std::pair<NodeId, DeltaEntry>>* flat,
                        size_t num_nodes, Side* side);

  EntrySpan SideRange(const Side& s, NodeId v, LabelId label) const {
    if (v >= num_nodes_ || s.entries.empty()) return EntrySpan{};
    // Almost every node is untouched by ΔG: one offset comparison exits.
    if (s.off[v] == s.off[v + 1]) return EntrySpan{};
    const DeltaEntry* first = s.entries.data() + s.off[v];
    const DeltaEntry* last = s.entries.data() + s.off[v + 1];
    auto lo = std::lower_bound(
        first, last, label,
        [](const DeltaEntry& e, LabelId l) { return e.label < l; });
    auto hi = std::upper_bound(
        lo, last, label,
        [](LabelId l, const DeltaEntry& e) { return l < e.label; });
    return EntrySpan{lo, hi};
  }

  /// Membership of `other` in a label span (spans are other-sorted).
  static bool SpanContains(const EntrySpan& span, NodeId other) {
    const DeltaEntry* it = std::lower_bound(
        span.first, span.last, other,
        [](const DeltaEntry& e, NodeId o) { return e.other < o; });
    return it != span.last && it->other == other;
  }

  bool SideContains(const Side& s, NodeId v, LabelId label,
                    NodeId other) const {
    return SpanContains(SideRange(s, v, label), other);
  }

  GraphSnapshot::IdRange BaseRange(NodeId v, bool out, LabelId label) const {
    if (v >= base_nodes_) return GraphSnapshot::IdRange{};
    return out ? base_->OutNeighbors(v, label) : base_->InNeighbors(v, label);
  }

  const GraphSnapshot* base_;
  const Graph* g_;
  size_t base_nodes_;
  size_t num_nodes_;
  Side out_ins_, out_del_, in_ins_, in_del_;
  /// Per-node kTouched* bits: ~|V|/1024 KiB, cache-resident, loaded once
  /// per hot-path query to skip every delta structure for the untouched
  /// nodes that dominate any realistic ΔG.
  std::vector<uint8_t> touched_;
};

}  // namespace ngd

#endif  // NGD_GRAPH_DELTA_VIEW_H_
