// GraphAccessor: one matching-engine-facing view over the live overlay
// Graph (a GraphView of it), an immutable CSR GraphSnapshot, or a
// DeltaView (an UpdateBatch overlaid on a base snapshot).
//
// The homomorphism engine (match/) is written once against this facade.
// Batch detection (Dect, FindAnyViolation, PDect) builds a GraphSnapshot
// per call and matches against its label-partitioned adjacency;
// incremental detection (IncDect, PIncDect) either matches the live
// overlay graph directly — whose adjacency carries the kInserted/kDeleted
// states — or a DeltaView, which serves the same two views from CSR
// label ranges plus per-node sorted delta ranges.
//
// The accessor is a tagged tuple of pointers with inline dispatch — no
// virtual calls on the hot path, and the branch is perfectly predicted
// inside any one search.

#ifndef NGD_GRAPH_ACCESSOR_H_
#define NGD_GRAPH_ACCESSOR_H_

#include <utility>

#include "graph/delta_view.h"
#include "graph/graph.h"
#include "graph/snapshot.h"

namespace ngd {

class GraphAccessor {
 public:
  GraphAccessor() = default;
  GraphAccessor(const Graph& g, GraphView view) : graph_(&g), view_(view) {}
  explicit GraphAccessor(const GraphSnapshot& snap)
      : snap_(&snap), view_(snap.view()) {}
  GraphAccessor(const DeltaView& dv, GraphView view)
      : delta_(&dv), view_(view) {}

  bool valid() const {
    return graph_ != nullptr || snap_ != nullptr || delta_ != nullptr;
  }
  bool is_snapshot() const { return snap_ != nullptr; }
  bool is_delta_view() const { return delta_ != nullptr; }
  const Graph* live_graph() const { return graph_; }
  const GraphSnapshot* snapshot() const { return snap_; }
  const DeltaView* delta_view() const { return delta_; }
  GraphView view() const { return view_; }

  size_t NumNodes() const {
    if (snap_ != nullptr) return snap_->NumNodes();
    if (delta_ != nullptr) return delta_->NumNodes();
    return graph_->NumNodes();
  }

  LabelId NodeLabel(NodeId v) const {
    if (snap_ != nullptr) return snap_->NodeLabel(v);
    if (delta_ != nullptr) return delta_->NodeLabel(v);
    return graph_->NodeLabel(v);
  }

  /// True iff graph node v can match a pattern node labelled `label`.
  bool NodeMatchesLabel(NodeId v, LabelId label) const {
    return label == kWildcardLabel || NodeLabel(v) == label;
  }

  const Value* GetAttr(NodeId v, AttrId attr) const {
    if (snap_ != nullptr) return snap_->GetAttr(v, attr);
    if (delta_ != nullptr) return delta_->GetAttr(v, attr);
    return graph_->GetAttr(v, attr);
  }

  bool HasEdge(NodeId src, NodeId dst, LabelId label) const {
    if (snap_ != nullptr) return snap_->HasEdge(src, dst, label);
    if (delta_ != nullptr) return delta_->HasEdge(src, dst, label, view_);
    return graph_->HasEdge(src, dst, label, view_);
  }

  /// |C(u)| for a pattern-node label.
  size_t CandidateCount(LabelId label) const {
    if (label == kWildcardLabel) return NumNodes();
    if (snap_ != nullptr) return snap_->CandidateCount(label);
    if (delta_ != nullptr) return delta_->CandidateCount(label);
    return graph_->NodesWithLabel(label).size();
  }

  /// Invokes fn(NodeId) -> bool for every candidate of `label`; fn
  /// returning false aborts the scan (early-exit searches stop paying
  /// for the remaining candidates). Returns false iff aborted.
  template <typename Fn>
  bool ForEachCandidate(LabelId label, Fn&& fn) const {
    if (label == kWildcardLabel) {
      const NodeId n = static_cast<NodeId>(NumNodes());
      for (NodeId v = 0; v < n; ++v) {
        if (!fn(v)) return false;
      }
      return true;
    }
    if (snap_ != nullptr) {
      for (NodeId v : snap_->NodesWithLabel(label)) {
        if (!fn(v)) return false;
      }
      return true;
    }
    if (delta_ != nullptr) {
      return delta_->ForEachCandidate(label, std::forward<Fn>(fn));
    }
    for (NodeId v : graph_->NodesWithLabel(label)) {
      if (!fn(v)) return false;
    }
    return true;
  }

  /// Invokes fn(NodeId) -> bool for each neighbor of v across an
  /// `edge_label` edge, outgoing (v -> w) when `out`, incoming (w -> v)
  /// otherwise; fn returning false aborts the scan. Returns false iff
  /// aborted. Snapshot/delta-view: touches exactly the matching label
  /// range (plus the delta entries). Live graph: scans the adjacency
  /// vector filtering label and overlay state.
  template <typename Fn>
  bool ForEachNeighbor(NodeId v, bool out, LabelId edge_label,
                       Fn&& fn) const {
    if (snap_ != nullptr) {
      GraphSnapshot::IdRange r = out ? snap_->OutNeighbors(v, edge_label)
                                     : snap_->InNeighbors(v, edge_label);
      for (NodeId w : r) {
        if (!fn(w)) return false;
      }
      return true;
    }
    if (delta_ != nullptr) {
      return delta_->ForEachNeighbor(v, out, edge_label, view_,
                                     std::forward<Fn>(fn));
    }
    const auto& adj = out ? graph_->OutEdges(v) : graph_->InEdges(v);
    for (const AdjEntry& e : adj) {
      if (e.label != edge_label) continue;
      if (!EdgeInView(e.state, view_)) continue;
      if (!fn(e.other)) return false;
    }
    return true;
  }

  /// Length of the sliceable neighbor sequence of (v, out, edge_label) —
  /// the index domain of ForEachNeighborSlice. Live graph: the raw
  /// adjacency vector (entries of other labels/states are skipped at
  /// iteration). Snapshot: the exact label range. Delta view: base label
  /// range plus inserted entries (see delta_view.h). PIncDect partitions
  /// this domain for work-unit splitting.
  size_t NeighborSeqLen(NodeId v, bool out, LabelId edge_label) const {
    if (snap_ != nullptr) {
      return (out ? snap_->OutNeighbors(v, edge_label)
                  : snap_->InNeighbors(v, edge_label))
          .size();
    }
    if (delta_ != nullptr) {
      return delta_->NeighborSeqLen(v, out, edge_label, view_);
    }
    return out ? graph_->OutEdges(v).size() : graph_->InEdges(v).size();
  }

  /// ForEachNeighbor restricted to positions [begin, end) of the
  /// neighbor sequence (work-unit slices: the receiving processor's
  /// partial copy v.adj_i). Returns false iff fn aborted.
  template <typename Fn>
  bool ForEachNeighborSlice(NodeId v, bool out, LabelId edge_label,
                            size_t begin, size_t end, Fn&& fn) const {
    if (snap_ != nullptr) {
      GraphSnapshot::IdRange r = out ? snap_->OutNeighbors(v, edge_label)
                                     : snap_->InNeighbors(v, edge_label);
      end = std::min(end, r.size());
      for (size_t i = begin; i < end; ++i) {
        if (!fn(r.ptr[i])) return false;
      }
      return true;
    }
    if (delta_ != nullptr) {
      return delta_->ForEachNeighborSlice(v, out, edge_label, view_, begin,
                                          end, std::forward<Fn>(fn));
    }
    const auto& adj = out ? graph_->OutEdges(v) : graph_->InEdges(v);
    end = std::min(end, adj.size());
    for (size_t i = begin; i < end; ++i) {
      const AdjEntry& e = adj[i];
      if (e.label != edge_label) continue;
      if (!EdgeInView(e.state, view_)) continue;
      if (!fn(e.other)) return false;
    }
    return true;
  }

  /// Cost estimate of ForEachNeighbor(v, out, edge_label): exact range
  /// length for a snapshot or delta view, the full adjacency length (an
  /// upper bound, O(1)) for the live graph. Comparable across anchors
  /// within one backend, which is all the cheaper-anchor choice needs.
  size_t NeighborScanCost(NodeId v, bool out, LabelId edge_label) const {
    return NeighborSeqLen(v, out, edge_label);
  }

 private:
  const Graph* graph_ = nullptr;
  const GraphSnapshot* snap_ = nullptr;
  const DeltaView* delta_ = nullptr;
  GraphView view_ = GraphView::kNew;
};

}  // namespace ngd

#endif  // NGD_GRAPH_ACCESSOR_H_
