// GraphAccessor: one matching-engine-facing view over either the live
// overlay Graph (a GraphView of it) or an immutable CSR GraphSnapshot.
//
// The homomorphism engine (match/) is written once against this facade.
// Batch detection (Dect, FindAnyViolation, PDect) builds a GraphSnapshot
// per call and matches against its label-partitioned adjacency;
// incremental detection keeps the live overlay graph, whose searches are
// update-local and must see kInserted/kDeleted states directly.
//
// The accessor is a tagged pair of pointers with inline two-way dispatch
// — no virtual calls on the hot path, and the branch is perfectly
// predicted inside any one search.

#ifndef NGD_GRAPH_ACCESSOR_H_
#define NGD_GRAPH_ACCESSOR_H_

#include <utility>

#include "graph/graph.h"
#include "graph/snapshot.h"

namespace ngd {

class GraphAccessor {
 public:
  GraphAccessor() = default;
  GraphAccessor(const Graph& g, GraphView view) : graph_(&g), view_(view) {}
  explicit GraphAccessor(const GraphSnapshot& snap)
      : snap_(&snap), view_(snap.view()) {}

  bool valid() const { return graph_ != nullptr || snap_ != nullptr; }
  bool is_snapshot() const { return snap_ != nullptr; }
  const Graph* live_graph() const { return graph_; }
  const GraphSnapshot* snapshot() const { return snap_; }
  GraphView view() const { return view_; }

  size_t NumNodes() const {
    return snap_ != nullptr ? snap_->NumNodes() : graph_->NumNodes();
  }

  LabelId NodeLabel(NodeId v) const {
    return snap_ != nullptr ? snap_->NodeLabel(v) : graph_->NodeLabel(v);
  }

  /// True iff graph node v can match a pattern node labelled `label`.
  bool NodeMatchesLabel(NodeId v, LabelId label) const {
    return label == kWildcardLabel || NodeLabel(v) == label;
  }

  const Value* GetAttr(NodeId v, AttrId attr) const {
    return snap_ != nullptr ? snap_->GetAttr(v, attr)
                            : graph_->GetAttr(v, attr);
  }

  bool HasEdge(NodeId src, NodeId dst, LabelId label) const {
    return snap_ != nullptr ? snap_->HasEdge(src, dst, label)
                            : graph_->HasEdge(src, dst, label, view_);
  }

  /// |C(u)| for a pattern-node label.
  size_t CandidateCount(LabelId label) const {
    if (label == kWildcardLabel) return NumNodes();
    return snap_ != nullptr ? snap_->CandidateCount(label)
                            : graph_->NodesWithLabel(label).size();
  }

  /// Invokes fn(NodeId) -> bool for every candidate of `label`; fn
  /// returning false aborts the scan (early-exit searches stop paying
  /// for the remaining candidates). Returns false iff aborted.
  template <typename Fn>
  bool ForEachCandidate(LabelId label, Fn&& fn) const {
    if (label == kWildcardLabel) {
      const NodeId n = static_cast<NodeId>(NumNodes());
      for (NodeId v = 0; v < n; ++v) {
        if (!fn(v)) return false;
      }
      return true;
    }
    if (snap_ != nullptr) {
      for (NodeId v : snap_->NodesWithLabel(label)) {
        if (!fn(v)) return false;
      }
    } else {
      for (NodeId v : graph_->NodesWithLabel(label)) {
        if (!fn(v)) return false;
      }
    }
    return true;
  }

  /// Invokes fn(NodeId) -> bool for each neighbor of v across an
  /// `edge_label` edge, outgoing (v -> w) when `out`, incoming (w -> v)
  /// otherwise; fn returning false aborts the scan. Returns false iff
  /// aborted. Snapshot: touches exactly the matching label range. Live
  /// graph: scans the adjacency vector filtering label and overlay state.
  template <typename Fn>
  bool ForEachNeighbor(NodeId v, bool out, LabelId edge_label,
                       Fn&& fn) const {
    if (snap_ != nullptr) {
      GraphSnapshot::IdRange r = out ? snap_->OutNeighbors(v, edge_label)
                                     : snap_->InNeighbors(v, edge_label);
      for (NodeId w : r) {
        if (!fn(w)) return false;
      }
      return true;
    }
    const auto& adj = out ? graph_->OutEdges(v) : graph_->InEdges(v);
    for (const AdjEntry& e : adj) {
      if (e.label != edge_label) continue;
      if (!EdgeInView(e.state, view_)) continue;
      if (!fn(e.other)) return false;
    }
    return true;
  }

  /// Cost estimate of ForEachNeighbor(v, out, edge_label): exact range
  /// length for a snapshot, the full adjacency length (an upper bound,
  /// O(1)) for the live graph. Comparable across anchors within one
  /// backend, which is all the cheaper-anchor choice needs.
  size_t NeighborScanCost(NodeId v, bool out, LabelId edge_label) const {
    if (snap_ != nullptr) {
      return (out ? snap_->OutNeighbors(v, edge_label)
                  : snap_->InNeighbors(v, edge_label))
          .size();
    }
    return out ? graph_->OutEdges(v).size() : graph_->InEdges(v).size();
  }

 private:
  const Graph* graph_ = nullptr;
  const GraphSnapshot* snap_ = nullptr;
  GraphView view_ = GraphView::kNew;
};

}  // namespace ngd

#endif  // NGD_GRAPH_ACCESSOR_H_
