// Directed property multigraph with an edge-state overlay.
//
// G = (V, E, L, F_A) per paper §2: nodes and edges carry labels from Γ,
// nodes carry attribute tuples with values from U. Edges are identified by
// (src, dst, label) — parallel edges with distinct labels are allowed.
//
// Incremental detection (paper §5.2) needs two views of the graph at once:
//   - GraphView::kOld — G (before the batch update ΔG)
//   - GraphView::kNew — G ⊕ ΔG (after)
// Instead of materializing both, each edge carries a state:
//   kBase      in both views
//   kInserted  only in kNew (insert(v,v') ∈ ΔG+)
//   kDeleted   only in kOld (delete(v,v') ∈ ΔG-)
// Commit() folds the overlay after ΔVio has been computed; Rollback()
// discards the pending update instead.

#ifndef NGD_GRAPH_GRAPH_H_
#define NGD_GRAPH_GRAPH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/dictionary.h"
#include "graph/value.h"
#include "util/status.h"

namespace ngd {

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

enum class EdgeState : uint8_t {
  kBase = 0,
  kInserted = 1,
  kDeleted = 2,
};

enum class GraphView : uint8_t {
  kOld = 0,  ///< G: base + deleted edges
  kNew = 1,  ///< G ⊕ ΔG: base + inserted edges
};

/// True iff an edge in `state` exists in `view`.
inline bool EdgeInView(EdgeState state, GraphView view) {
  switch (state) {
    case EdgeState::kBase:
      return true;
    case EdgeState::kInserted:
      return view == GraphView::kNew;
    case EdgeState::kDeleted:
      return view == GraphView::kOld;
  }
  return false;
}

/// Adjacency entry: one directed edge endpoint, with label and state.
struct AdjEntry {
  NodeId other;
  LabelId label;
  EdgeState state;
};

/// Canonical edge identity.
struct EdgeKey {
  NodeId src;
  NodeId dst;
  LabelId label;

  bool operator==(const EdgeKey& o) const {
    return src == o.src && dst == o.dst && label == o.label;
  }
};

struct EdgeKeyHash {
  size_t operator()(const EdgeKey& k) const {
    uint64_t h = (uint64_t(k.src) << 32) | k.dst;
    h ^= uint64_t(k.label) * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 32;
    return static_cast<size_t>(h);
  }
};

class Graph {
 public:
  explicit Graph(SchemaPtr schema);

  const SchemaPtr& schema() const { return schema_; }

  // ---- Construction -------------------------------------------------------

  /// Adds a node with the given label; returns its id.
  NodeId AddNode(LabelId label);
  NodeId AddNode(std::string_view label_name);

  /// Sets (or overwrites) attribute A on node v.
  void SetAttr(NodeId v, AttrId attr, Value value);
  void SetAttr(NodeId v, std::string_view attr_name, Value value);

  /// Adds a base edge (present in both views). Fails with kAlreadyExists if
  /// the (src, dst, label) edge already exists in any state.
  Status AddEdge(NodeId src, NodeId dst, LabelId label);
  Status AddEdge(NodeId src, NodeId dst, std::string_view label_name);

  // ---- Batch-update overlay (ΔG) ------------------------------------------

  /// Records insert(src, dst, label) ∈ ΔG+. The edge becomes visible in
  /// kNew only. Fails if the edge already exists in kNew.
  Status InsertEdge(NodeId src, NodeId dst, LabelId label);

  /// Records delete(src, dst, label) ∈ ΔG-. A base edge is marked deleted
  /// (still visible in kOld); deleting a pending kInserted edge removes it
  /// outright. Fails if no such edge exists in kNew.
  Status DeleteEdge(NodeId src, NodeId dst, LabelId label);

  /// Folds the overlay: inserted edges become base, deleted edges vanish.
  void Commit();

  /// Discards the overlay: inserted edges vanish, deleted edges revert.
  void Rollback();

  /// True if any kInserted/kDeleted edge is pending.
  bool HasPendingUpdate() const { return pending_updates_ > 0; }

  // ---- Inspection ----------------------------------------------------------

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges(GraphView view) const;

  LabelId NodeLabel(NodeId v) const { return nodes_[v].label; }
  const std::string& NodeLabelName(NodeId v) const {
    return schema_->labels().NameOf(nodes_[v].label);
  }

  /// nullptr when the node does not carry the attribute. Matching semantics
  /// depend on this (paper §3: "node v = h(x) carries attribute A").
  const Value* GetAttr(NodeId v, AttrId attr) const;
  const std::vector<std::pair<AttrId, Value>>& Attrs(NodeId v) const {
    return nodes_[v].attrs;
  }

  bool HasEdge(NodeId src, NodeId dst, LabelId label, GraphView view) const;

  /// Current overlay state of an edge, or nullopt if absent from both
  /// views. Incremental detection uses this to recognize update records
  /// that cancelled out (e.g. delete + reinsert of the same edge).
  std::optional<EdgeState> EdgeStateOf(NodeId src, NodeId dst,
                                       LabelId label) const;

  /// Raw adjacency including all states; callers filter with EdgeInView.
  const std::vector<AdjEntry>& OutEdges(NodeId v) const { return out_[v]; }
  const std::vector<AdjEntry>& InEdges(NodeId v) const { return in_[v]; }

  /// Degree (out + in) counting edges visible in `view`.
  size_t Degree(NodeId v, GraphView view) const;

  /// Total adjacency length (both directions, all states); the parallel
  /// cost model uses this as |v.adj|.
  size_t AdjSize(NodeId v) const { return out_[v].size() + in_[v].size(); }

  /// All node ids with the given label (label-indexed candidates).
  const std::vector<NodeId>& NodesWithLabel(LabelId label) const;

  std::string DebugString() const;

 private:
  struct NodeRecord {
    LabelId label;
    std::vector<std::pair<AttrId, Value>> attrs;  // sorted by AttrId
  };

  void SetEdgeState(NodeId src, NodeId dst, LabelId label, EdgeState state);
  void RemoveAdjEntries(NodeId src, NodeId dst, LabelId label);

  SchemaPtr schema_;
  std::vector<NodeRecord> nodes_;
  std::vector<std::vector<AdjEntry>> out_;
  std::vector<std::vector<AdjEntry>> in_;
  std::unordered_map<EdgeKey, EdgeState, EdgeKeyHash> edge_index_;
  std::vector<std::vector<NodeId>> label_index_;  // label -> node ids
  size_t num_base_edges_ = 0;
  size_t num_inserted_edges_ = 0;
  size_t num_deleted_edges_ = 0;
  size_t pending_updates_ = 0;
  static const std::vector<NodeId> kEmptyNodeList;
};

}  // namespace ngd

#endif  // NGD_GRAPH_GRAPH_H_
