#include "graph/value.h"

#include <functional>

namespace ngd {

std::string Value::ToString() const {
  if (is_int()) return std::to_string(AsInt());
  return "\"" + AsString() + "\"";
}

size_t Value::Hash() const {
  if (is_int()) {
    return std::hash<int64_t>()(AsInt()) * 0x9e3779b97f4a7c15ULL;
  }
  return std::hash<std::string>()(AsString()) ^ 0x5851f42d4c957f2dULL;
}

}  // namespace ngd
