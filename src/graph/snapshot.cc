#include "graph/snapshot.h"

#include <algorithm>
#include <cassert>

namespace ngd {

void GraphSnapshot::Build(const Graph& g, GraphView view, bool out,
                          const NodeSet* include, Direction* d) {
  const size_t n = g.NumNodes();
  const size_t num_labels = g.schema()->labels().size();
  d->group_off.assign(n + 1, 0);
  d->nbr.reserve(g.NumEdges(view));

  // Per-node counting sort on the label (reusable O(|Γ|) scratch, reset
  // via the touched list), then an id sort within each label segment.
  // Beats a comparator sort of (label, id) pairs ~2x: segments are short,
  // so the O(d log d) factor collapses to O(d + Σ s log s).
  // With an `include` set only edges with both endpoints included
  // survive (the induced subgraph), keeping out_/in_ exact transposes.
  std::vector<uint32_t> seg(num_labels, 0);  // label -> count, then offset
  std::vector<LabelId> touched;
  std::vector<NodeId> buf;
  for (NodeId v = 0; v < n; ++v) {
    if (include != nullptr && !include->Contains(v)) {
      d->group_off[v + 1] = static_cast<uint32_t>(d->groups.size());
      continue;
    }
    const auto& adj = out ? g.OutEdges(v) : g.InEdges(v);
    touched.clear();
    for (const AdjEntry& e : adj) {
      if (!EdgeInView(e.state, view)) continue;
      if (include != nullptr && !include->Contains(e.other)) continue;
      if (seg[e.label]++ == 0) touched.push_back(e.label);
    }
    if (!touched.empty()) {
      std::sort(touched.begin(), touched.end());
      uint32_t off = 0;
      for (LabelId l : touched) {
        const uint32_t count = seg[l];
        seg[l] = off;
        off += count;
      }
      buf.resize(off);
      for (const AdjEntry& e : adj) {
        if (!EdgeInView(e.state, view)) continue;
        if (include != nullptr && !include->Contains(e.other)) continue;
        buf[seg[e.label]++] = e.other;
      }
      uint32_t begin = 0;
      for (LabelId l : touched) {
        const uint32_t end = seg[l];
        std::sort(buf.begin() + begin, buf.begin() + end);
        d->groups.push_back(Direction::LabelGroup{
            l, static_cast<uint32_t>(d->nbr.size()),
            static_cast<uint32_t>(d->nbr.size() + (end - begin))});
        d->nbr.insert(d->nbr.end(), buf.begin() + begin, buf.begin() + end);
        begin = end;
        seg[l] = 0;  // reset scratch for the next node
      }
    }
    d->group_off[v + 1] = static_cast<uint32_t>(d->groups.size());
  }
}

GraphSnapshot::GraphSnapshot(const Graph& g, GraphView view)
    : GraphSnapshot(g, view, static_cast<const NodeSet*>(nullptr)) {}

GraphSnapshot::GraphSnapshot(const Graph& g, GraphView view,
                             const NodeSet& include)
    : GraphSnapshot(g, view, &include) {}

GraphSnapshot::GraphSnapshot(const Graph& g, GraphView view,
                             const NodeSet* include)
    : schema_(g.schema()), view_(view) {
  const size_t n = g.NumNodes();

  node_labels_.reserve(n);
  for (NodeId v = 0; v < n; ++v) node_labels_.push_back(g.NodeLabel(v));

  Build(g, view, /*out=*/true, include, &out_);
  Build(g, view, /*out=*/false, include, &in_);

  // Flat attribute storage; Graph keeps each tuple AttrId-sorted already.
  // Excluded nodes get an empty range — their attributes live in the
  // fragments that own or replicate them.
  attr_off_.assign(n + 1, 0);
  size_t total_attrs = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (include == nullptr || include->Contains(v)) {
      total_attrs += g.Attrs(v).size();
    }
  }
  attrs_.reserve(total_attrs);
  for (NodeId v = 0; v < n; ++v) {
    if (include == nullptr || include->Contains(v)) {
      for (const auto& a : g.Attrs(v)) attrs_.push_back(a);
    }
    attr_off_[v + 1] = static_cast<uint32_t>(attrs_.size());
  }

  // Label → candidate-node CSR via counting sort (node ids stay
  // ascending within each label).
  const size_t num_labels = schema_->labels().size();
  label_off_.assign(num_labels + 1, 0);
  for (LabelId l : node_labels_) {
    assert(l < num_labels);
    ++label_off_[l + 1];
  }
  for (size_t l = 0; l < num_labels; ++l) label_off_[l + 1] += label_off_[l];
  label_nodes_.resize(n);
  std::vector<uint32_t> cursor(label_off_.begin(), label_off_.end() - 1);
  for (NodeId v = 0; v < n; ++v) label_nodes_[cursor[node_labels_[v]]++] = v;
}

const Value* GraphSnapshot::GetAttr(NodeId v, AttrId attr) const {
  const auto* first = attrs_.data() + attr_off_[v];
  const auto* last = attrs_.data() + attr_off_[v + 1];
  const auto* it = std::lower_bound(
      first, last, attr,
      [](const std::pair<AttrId, Value>& p, AttrId a) { return p.first < a; });
  if (it != last && it->first == attr) return &it->second;
  return nullptr;
}

GraphSnapshot::IdRange GraphSnapshot::FindRange(const Direction& d, NodeId v,
                                                LabelId label) const {
  const auto* first = d.groups.data() + d.group_off[v];
  const auto* last = d.groups.data() + d.group_off[v + 1];
  // Typical nodes touch a handful of distinct edge labels — a linear
  // scan of the label-ascending group list wins there — but hub nodes in
  // label-rich graphs (the paper's synthetic has |Γ| = 500) can carry
  // hundreds of groups, where binary search matters.
  constexpr ptrdiff_t kLinearCutoff = 16;
  if (last - first > kLinearCutoff) {
    const auto* it = std::lower_bound(
        first, last, label,
        [](const Direction::LabelGroup& group, LabelId l) {
          return group.label < l;
        });
    if (it != last && it->label == label) {
      return IdRange{d.nbr.data() + it->begin,
                     static_cast<size_t>(it->end - it->begin)};
    }
    return IdRange{};
  }
  for (const auto* it = first; it != last; ++it) {
    if (it->label == label) {
      return IdRange{d.nbr.data() + it->begin,
                     static_cast<size_t>(it->end - it->begin)};
    }
    if (it->label > label) break;
  }
  return IdRange{};
}

size_t GraphSnapshot::TotalDegree(const Direction& d, NodeId v) {
  const uint32_t gb = d.group_off[v];
  const uint32_t ge = d.group_off[v + 1];
  if (gb == ge) return 0;
  return d.groups[ge - 1].end - d.groups[gb].begin;
}

bool GraphSnapshot::HasEdge(NodeId src, NodeId dst, LabelId label) const {
  if (src >= NumNodes() || dst >= NumNodes()) return false;
  IdRange fwd = OutNeighbors(src, label);
  if (fwd.empty()) return false;
  IdRange bwd = InNeighbors(dst, label);
  if (bwd.empty()) return false;
  // Probe the smaller-degree endpoint: both ranges are id-sorted.
  const IdRange& r = fwd.size() <= bwd.size() ? fwd : bwd;
  const NodeId needle = fwd.size() <= bwd.size() ? dst : src;
  return std::binary_search(r.begin(), r.end(), needle);
}

GraphSnapshot::IdRange GraphSnapshot::NodesWithLabel(LabelId label) const {
  if (static_cast<size_t>(label) + 1 >= label_off_.size()) return IdRange{};
  return IdRange{label_nodes_.data() + label_off_[label],
                 static_cast<size_t>(label_off_[label + 1] -
                                     label_off_[label])};
}

}  // namespace ngd
