#include "graph/update_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>

#include "graph/graph_io.h"
#include "graph/snapshot.h"
#include "graph/snapshot_io.h"
#include "util/failpoint.h"
#include "util/fs.h"
#include "util/hash.h"

namespace ngd {
namespace {

constexpr uint32_t kEndianProbe = 0x01020304;
constexpr size_t kWalHeaderBytes = 24;    // magic + version + endian + base
constexpr size_t kRecordHeaderBytes = 24;  // len + kind + epoch + checksum
constexpr uint32_t kRecordKindEpoch = 0;

// ---- little-endian scalar IO ----------------------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutStr(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked little-endian reader over a payload slice.
struct Reader {
  const unsigned char* p;
  size_t n;
  size_t off = 0;

  bool U8(uint8_t* v) {
    if (off + 1 > n) return false;
    *v = p[off++];
    return true;
  }
  bool U32(uint32_t* v) {
    if (off + 4 > n) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= uint32_t(p[off + i]) << (8 * i);
    off += 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (off + 8 > n) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= uint64_t(p[off + i]) << (8 * i);
    off += 8;
    return true;
  }
  bool Str(std::string* v) {
    uint32_t len;
    if (!U32(&len)) return false;
    if (off + len > n) return false;
    v->assign(reinterpret_cast<const char*>(p + off), len);
    off += len;
    return true;
  }
  bool AtEnd() const { return off == n; }
};

// ---- epoch payload codec ---------------------------------------------------

/// Interns a name into the record-local string table.
uint32_t TableIndex(std::vector<std::string>* table,
                    std::unordered_map<std::string, uint32_t>* index,
                    const std::string& name) {
  auto it = index->find(name);
  if (it != index->end()) return it->second;
  uint32_t id = static_cast<uint32_t>(table->size());
  table->push_back(name);
  index->emplace(name, id);
  return id;
}

std::string SerializeEpochPayload(const EpochRecord& rec) {
  // Record-local string tables so the record is schema-independent.
  std::vector<std::string> labels, attrs;
  std::unordered_map<std::string, uint32_t> label_idx, attr_idx;
  std::vector<uint32_t> node_labels, update_labels;
  std::vector<std::vector<uint32_t>> node_attr_ids;
  node_labels.reserve(rec.new_nodes.size());
  for (const EpochRecord::NewNode& nn : rec.new_nodes) {
    node_labels.push_back(TableIndex(&labels, &label_idx, nn.label));
    std::vector<uint32_t> ids;
    ids.reserve(nn.attrs.size());
    for (const auto& [name, value] : nn.attrs) {
      ids.push_back(TableIndex(&attrs, &attr_idx, name));
    }
    node_attr_ids.push_back(std::move(ids));
  }
  update_labels.reserve(rec.updates.size());
  for (const EpochRecord::EdgeUpdate& u : rec.updates) {
    update_labels.push_back(TableIndex(&labels, &label_idx, u.label));
  }

  std::string out;
  PutU32(&out, static_cast<uint32_t>(labels.size()));
  for (const std::string& s : labels) PutStr(&out, s);
  PutU32(&out, static_cast<uint32_t>(attrs.size()));
  for (const std::string& s : attrs) PutStr(&out, s);

  PutU32(&out, rec.first_new_node);
  PutU32(&out, static_cast<uint32_t>(rec.new_nodes.size()));
  for (size_t i = 0; i < rec.new_nodes.size(); ++i) {
    const EpochRecord::NewNode& nn = rec.new_nodes[i];
    PutU32(&out, node_labels[i]);
    PutU32(&out, static_cast<uint32_t>(nn.attrs.size()));
    for (size_t a = 0; a < nn.attrs.size(); ++a) {
      PutU32(&out, node_attr_ids[i][a]);
      const Value& v = nn.attrs[a].second;
      if (v.is_int()) {
        PutU8(&out, 0);
        PutU64(&out, static_cast<uint64_t>(v.AsInt()));
      } else {
        PutU8(&out, 1);
        PutStr(&out, v.AsString());
      }
    }
  }

  PutU32(&out, static_cast<uint32_t>(rec.updates.size()));
  for (size_t i = 0; i < rec.updates.size(); ++i) {
    const EpochRecord::EdgeUpdate& u = rec.updates[i];
    PutU8(&out, static_cast<uint8_t>(u.kind));
    PutU32(&out, u.src);
    PutU32(&out, u.dst);
    PutU32(&out, update_labels[i]);
  }
  return out;
}

Status ParseEpochPayload(const unsigned char* bytes, size_t n, uint64_t epoch,
                         EpochRecord* rec) {
  Reader r{bytes, n};
  Status bad = Status::Corruption("malformed journal record payload (epoch " +
                                  std::to_string(epoch) + ")");
  uint32_t num_labels;
  if (!r.U32(&num_labels)) return bad;
  std::vector<std::string> labels(num_labels);
  for (std::string& s : labels) {
    if (!r.Str(&s)) return bad;
  }
  uint32_t num_attrs;
  if (!r.U32(&num_attrs)) return bad;
  std::vector<std::string> attrs(num_attrs);
  for (std::string& s : attrs) {
    if (!r.Str(&s)) return bad;
  }

  rec->epoch = epoch;
  uint32_t first_new_node, num_new_nodes;
  if (!r.U32(&first_new_node) || !r.U32(&num_new_nodes)) return bad;
  rec->first_new_node = first_new_node;
  rec->new_nodes.clear();
  rec->new_nodes.reserve(num_new_nodes);
  for (uint32_t i = 0; i < num_new_nodes; ++i) {
    EpochRecord::NewNode nn;
    uint32_t label, nattr;
    if (!r.U32(&label) || label >= num_labels || !r.U32(&nattr)) return bad;
    nn.label = labels[label];
    nn.attrs.reserve(nattr);
    for (uint32_t a = 0; a < nattr; ++a) {
      uint32_t attr;
      uint8_t tag;
      if (!r.U32(&attr) || attr >= num_attrs || !r.U8(&tag)) return bad;
      if (tag == 0) {
        uint64_t v;
        if (!r.U64(&v)) return bad;
        nn.attrs.emplace_back(attrs[attr], Value(static_cast<int64_t>(v)));
      } else if (tag == 1) {
        std::string s;
        if (!r.Str(&s)) return bad;
        nn.attrs.emplace_back(attrs[attr], Value(std::move(s)));
      } else {
        return bad;
      }
    }
    rec->new_nodes.push_back(std::move(nn));
  }

  uint32_t num_updates;
  if (!r.U32(&num_updates)) return bad;
  rec->updates.clear();
  rec->updates.reserve(num_updates);
  for (uint32_t i = 0; i < num_updates; ++i) {
    EpochRecord::EdgeUpdate u;
    uint8_t kind;
    uint32_t label;
    if (!r.U8(&kind) || kind > 1 || !r.U32(&u.src) || !r.U32(&u.dst) ||
        !r.U32(&label) || label >= num_labels) {
      return bad;
    }
    u.kind = static_cast<UpdateKind>(kind);
    u.label = labels[label];
    rec->updates.push_back(std::move(u));
  }
  if (!r.AtEnd()) return bad;  // trailing garbage inside a checksummed record
  return Status::OK();
}

std::string SerializeWalHeader(uint64_t base_epoch) {
  std::string h;
  h.append(kWalMagic, sizeof(kWalMagic));
  PutU32(&h, kWalFormatVersion);
  PutU32(&h, kEndianProbe);
  PutU64(&h, base_epoch);
  return h;
}

// ---- journal image scan ----------------------------------------------------

struct ScanState {
  uint64_t base_epoch = 0;
  uint64_t last_epoch = 0;
  size_t records = 0;
  size_t good_end = 0;  // byte offset after the last good record
};

/// Validates the header and walks records, applying the tail policy from
/// the header comment in update_log.h. `out` (optional) receives parsed
/// records. Returns kCorruption only for damage that cannot be a torn
/// append; a torn tail just stops the scan (good_end < image size).
Status ScanLogImage(std::string_view image, const std::string& path,
                    std::vector<EpochRecord>* out, ScanState* scan) {
  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(image.data());
  if (image.size() < kWalHeaderBytes) {
    return Status::Corruption("journal header truncated: " + path);
  }
  if (std::memcmp(bytes, kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::Corruption("not an NGDWAL1 journal: " + path);
  }
  Reader h{bytes + sizeof(kWalMagic), kWalHeaderBytes - sizeof(kWalMagic)};
  uint32_t version, endian;
  uint64_t base_epoch;
  // Reads cannot run short: the length check above guarantees a full header.
  (void)h.U32(&version);
  (void)h.U32(&endian);
  (void)h.U64(&base_epoch);
  if (version != kWalFormatVersion) {
    return Status::Corruption("unsupported journal version " +
                              std::to_string(version) + ": " + path);
  }
  if (endian != kEndianProbe) {
    return Status::Corruption("journal endianness mismatch: " + path);
  }

  scan->base_epoch = base_epoch;
  scan->last_epoch = base_epoch;
  scan->good_end = kWalHeaderBytes;
  size_t off = kWalHeaderBytes;
  while (off < image.size()) {
    // A record whose header or payload runs past EOF is a torn tail.
    if (off + kRecordHeaderBytes > image.size()) break;
    Reader r{bytes + off, kRecordHeaderBytes};
    uint32_t payload_len, kind;
    uint64_t epoch, checksum;
    // Reads cannot run short: the torn-tail check above bounds the header.
    (void)r.U32(&payload_len);
    (void)r.U32(&kind);
    (void)r.U64(&epoch);
    (void)r.U64(&checksum);
    const size_t end = off + kRecordHeaderBytes + payload_len;
    if (end > image.size() || end < off) break;  // torn tail (or mad length)
    if (Fnv1a64(bytes + off + kRecordHeaderBytes, payload_len) != checksum) {
      if (end == image.size()) break;  // bit-rot on the final append: torn
      // An all-zero suffix is a torn append onto pre-zeroed blocks, not
      // mid-file damage: no committed record can live inside it (even an
      // empty payload has a nonzero FNV-1a checksum, so an all-zero
      // header never validates). Anything nonzero past a bad record is
      // damage to data we once acknowledged, and must not be dropped.
      bool zero_suffix = true;
      for (size_t i = off; i < image.size(); ++i) {
        if (bytes[i] != 0) {
          zero_suffix = false;
          break;
        }
      }
      if (zero_suffix) break;  // torn tail
      return Status::Corruption("journal record checksum mismatch at offset " +
                                std::to_string(off) + ": " + path);
    }
    if (kind != kRecordKindEpoch) {
      return Status::Corruption("unknown journal record kind " +
                                std::to_string(kind) + ": " + path);
    }
    if (epoch != scan->last_epoch + 1) {
      return Status::Corruption(
          "journal epoch discontinuity (have " + std::to_string(epoch) +
          ", want " + std::to_string(scan->last_epoch + 1) + "): " + path);
    }
    if (out != nullptr) {
      EpochRecord rec;
      NGD_RETURN_IF_ERROR(ParseEpochPayload(bytes + off + kRecordHeaderBytes,
                                            payload_len, epoch, &rec));
      out->push_back(std::move(rec));
    }
    scan->last_epoch = epoch;
    ++scan->records;
    scan->good_end = end;
    off = end;
  }
  return Status::OK();
}

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

// ---- EpochRecord -----------------------------------------------------------

EpochRecord EpochRecord::Capture(const Graph& g, const UpdateBatch& batch,
                                 NodeId first_new_node, uint64_t epoch) {
  EpochRecord rec;
  rec.epoch = epoch;
  rec.first_new_node = first_new_node;
  const SchemaPtr& schema = g.schema();
  for (NodeId v = first_new_node; v < g.NumNodes(); ++v) {
    NewNode nn;
    nn.label = g.NodeLabelName(v);
    for (const auto& [attr, value] : g.Attrs(v)) {
      nn.attrs.emplace_back(schema->attrs().NameOf(attr), value);
    }
    rec.new_nodes.push_back(std::move(nn));
  }
  rec.updates.reserve(batch.updates.size());
  for (const UnitUpdate& u : batch.updates) {
    rec.updates.push_back(
        EdgeUpdate{u.kind, u.src, u.dst, schema->labels().NameOf(u.label)});
  }
  return rec;
}

Status EpochRecord::ApplyTo(Graph* g) const {
  const size_t have = g->NumNodes();
  const uint64_t want_end =
      uint64_t{first_new_node} + new_nodes.size();  // no u32 overflow
  if (first_new_node > have) {
    return Status::Corruption("journal epoch " + std::to_string(epoch) +
                              " creates nodes from id " +
                              std::to_string(first_new_node) +
                              " but the graph has only " +
                              std::to_string(have));
  }
  if (want_end > have && first_new_node != have) {
    return Status::Corruption("journal epoch " + std::to_string(epoch) +
                              " node range straddles the graph end");
  }
  if (want_end > have) {
    // First application: append the journaled nodes.
    for (const NewNode& nn : new_nodes) {
      NodeId v = g->AddNode(std::string_view(nn.label));
      for (const auto& [name, value] : nn.attrs) {
        g->SetAttr(v, std::string_view(name), value);
      }
    }
  } else {
    // Re-application (idempotent replay): the nodes exist; make sure they
    // are the nodes the record describes.
    for (size_t i = 0; i < new_nodes.size(); ++i) {
      NodeId v = first_new_node + static_cast<NodeId>(i);
      if (g->NodeLabelName(v) != new_nodes[i].label) {
        return Status::Corruption(
            "journal epoch " + std::to_string(epoch) + " node " +
            std::to_string(v) + " label mismatch on replay");
      }
    }
  }

  UpdateBatch batch;
  batch.updates.reserve(updates.size());
  for (const EdgeUpdate& u : updates) {
    if (u.src >= g->NumNodes() || u.dst >= g->NumNodes()) {
      g->Rollback();
      return Status::Corruption("journal epoch " + std::to_string(epoch) +
                                " references node beyond graph end");
    }
    batch.updates.push_back(UnitUpdate{
        u.kind, u.src, u.dst, g->schema()->InternLabel(u.label)});
  }
  Status st = ApplyUpdateBatch(g, &batch);
  if (!st.ok()) {
    g->Rollback();
    return Status::Corruption("journal epoch " + std::to_string(epoch) +
                              " replay failed: " + st.ToString());
  }
  g->Commit();
  return Status::OK();
}

// ---- UpdateLog -------------------------------------------------------------

StatusOr<std::unique_ptr<UpdateLog>> UpdateLog::Open(const std::string& path,
                                                     OpenInfo* info) {
  auto bytes_or = ReadFileBytes(path);
  if (!bytes_or.ok() && bytes_or.status().code() != StatusCode::kNotFound) {
    return bytes_or.status();
  }
  if (!bytes_or.ok() || bytes_or->empty()) {
    NGD_ASSIGN_OR_RETURN(std::unique_ptr<UpdateLog> log, Create(path, 0));
    if (info != nullptr) {
      *info = OpenInfo{};
      info->created = true;
    }
    return log;
  }

  ScanState scan;
  NGD_RETURN_IF_ERROR(ScanLogImage(*bytes_or, path, nullptr, &scan));
  const uint64_t truncated = bytes_or->size() - scan.good_end;

  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) return Status::NotFound(Errno("cannot open " + path));
  if (truncated > 0) {
    // Drop the torn tail so the next append starts at a record boundary.
    if (::ftruncate(fd, static_cast<off_t>(scan.good_end)) != 0) {
      ::close(fd);
      return Status::Internal(Errno("cannot truncate torn tail of " + path));
    }
    if (::fsync(fd) != 0) {
      ::close(fd);
      return Status::Internal(Errno("fsync failed for " + path));
    }
  }
  if (info != nullptr) {
    *info = OpenInfo{};
    info->base_epoch = scan.base_epoch;
    info->last_epoch = scan.last_epoch;
    info->records = scan.records;
    info->truncated_bytes = truncated;
  }
  return std::unique_ptr<UpdateLog>(
      // Private ctor: make_unique cannot reach it. ngdlint:allow(naked-new)
      new UpdateLog(path, fd, scan.base_epoch, scan.last_epoch));
}

StatusOr<std::unique_ptr<UpdateLog>> UpdateLog::Create(const std::string& path,
                                                       uint64_t base_epoch) {
  NGD_RETURN_IF_ERROR(
      WriteFileAtomic(path, SerializeWalHeader(base_epoch),
                      NGD_FAILPOINT("wal_create")));
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) return Status::NotFound(Errno("cannot open " + path));
  return std::unique_ptr<UpdateLog>(
      // Private ctor: make_unique cannot reach it. ngdlint:allow(naked-new)
      new UpdateLog(path, fd, base_epoch, base_epoch));
}

UpdateLog::~UpdateLog() {
  if (fd_ >= 0) ::close(fd_);
}

Status UpdateLog::Append(const EpochRecord& rec) {
  if (fd_ < 0) return Status::Internal("journal is closed: " + path_);
  if (sync_failure_pending_) {
    return Status::Internal("journal in failed state (lost sync): " + path_);
  }
  if (rec.epoch != last_epoch_ + 1) {
    return Status::InvalidArgument(
        "non-consecutive epoch " + std::to_string(rec.epoch) + " (expected " +
        std::to_string(last_epoch_ + 1) + "): " + path_);
  }
  const std::string payload = SerializeEpochPayload(rec);
  std::string record;
  record.reserve(kRecordHeaderBytes + payload.size());
  PutU32(&record, static_cast<uint32_t>(payload.size()));
  PutU32(&record, kRecordKindEpoch);
  PutU64(&record, rec.epoch);
  PutU64(&record, Fnv1a64(payload.data(), payload.size()));
  record.append(payload);

  Status st =
      WriteWithFailpoint(fd_, record, NGD_FAILPOINT("wal_append"),
                         &sync_failure_pending_);
  if (!st.ok()) {
    // The file may now carry a torn record. Treat the handle as dead — the
    // process-crash model this simulates never appends again; a real
    // caller reopens the journal, which truncates the tail.
    ::close(fd_);
    fd_ = -1;
    return st;
  }
  last_epoch_ = rec.epoch;
  return Status::OK();
}

Status UpdateLog::Sync() {
  if (fd_ < 0) return Status::Internal("journal is closed: " + path_);
  if (sync_failure_pending_) {
    sync_failure_pending_ = false;
    ::close(fd_);
    fd_ = -1;
    return Status::Internal("injected fsync failure at wal_append: " + path_);
  }
  Status st = SyncFdWithFailpoint(fd_, NGD_FAILPOINT("wal_sync"));
  if (!st.ok()) {
    // After a failed fsync the kernel may have dropped the dirty pages;
    // durability of earlier appends is unknown. Fail the handle.
    ::close(fd_);
    fd_ = -1;
  }
  return st;
}

// ---- recovery and compaction ----------------------------------------------

StatusOr<std::vector<EpochRecord>> ReadLogRecords(const std::string& path,
                                                  UpdateLog::OpenInfo* info) {
  NGD_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  std::vector<EpochRecord> records;
  ScanState scan;
  NGD_RETURN_IF_ERROR(ScanLogImage(bytes, path, &records, &scan));
  if (info != nullptr) {
    *info = UpdateLog::OpenInfo{};
    info->base_epoch = scan.base_epoch;
    info->last_epoch = scan.last_epoch;
    info->records = scan.records;
    info->truncated_bytes = bytes.size() - scan.good_end;
  }
  return records;
}

StatusOr<RecoverResult> RecoverState(const std::string& snapshot_path,
                                     const std::string& wal_path,
                                     SchemaPtr schema) {
  RecoverResult res;
  auto snap_or = LoadSnapshotFile(snapshot_path, schema);
  if (snap_or.ok()) {
    NGD_ASSIGN_OR_RETURN(res.graph, MaterializeGraph(**snap_or));
    res.snapshot_loaded = true;
  } else if (snap_or.status().code() == StatusCode::kNotFound) {
    res.graph = std::make_unique<Graph>(schema);
  } else {
    return snap_or.status();
  }

  UpdateLog::OpenInfo info;
  auto records_or = ReadLogRecords(wal_path, &info);
  if (records_or.ok()) {
    for (const EpochRecord& rec : *records_or) {
      NGD_RETURN_IF_ERROR(rec.ApplyTo(res.graph.get()));
      ++res.replayed_records;
    }
    res.last_epoch = info.last_epoch;
    res.truncated_bytes = info.truncated_bytes;
  } else if (records_or.status().code() != StatusCode::kNotFound) {
    return records_or.status();
  }
  return res;
}

Status RotateState(const Graph& g, const std::string& snapshot_path,
                   std::unique_ptr<UpdateLog>* wal) {
  if (wal == nullptr || *wal == nullptr) {
    return Status::InvalidArgument("RotateState needs an open journal");
  }
  if (g.HasPendingUpdate()) {
    return Status::InvalidArgument(
        "RotateState requires a committed graph (pending ΔG overlay)");
  }
  GraphSnapshot snap(g, GraphView::kNew);
  NGD_ASSIGN_OR_RETURN(std::string image, SerializeSnapshot(snap));
  NGD_RETURN_IF_ERROR(
      WriteFileAtomic(snapshot_path, image, NGD_FAILPOINT("rotate_snapshot")));

  // Crash window here leaves "new snapshot + old journal": replay of the
  // journal's full suffix onto the new snapshot is idempotent.
  const uint64_t base = (*wal)->last_epoch();
  const std::string wal_path = (*wal)->path();
  wal->reset();  // close before replacing the file
  NGD_ASSIGN_OR_RETURN(*wal, UpdateLog::Create(wal_path, base));
  return Status::OK();
}

}  // namespace ngd
