#include "graph/snapshot_io.h"

#include <cstring>

#include "graph/graph_io.h"
#include <fstream>
#include <limits>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/failpoint.h"
#include "util/fs.h"

namespace ngd {

namespace {

constexpr uint32_t kEndianMarker = 0x01020304;

/// Section ids of format version 1. A v1 file carries exactly this set.
enum SectionId : uint32_t {
  kNodeLabels = 1,
  kOutNbr = 2,
  kOutGroups = 3,
  kOutGroupOff = 4,
  kInNbr = 5,
  kInGroups = 6,
  kInGroupOff = 7,
  kAttrOff = 8,
  kAttrKeys = 9,
  kAttrTags = 10,
  kAttrVals = 11,
  kStrOff = 12,
  kStrBytes = 13,
  kLabelNodes = 14,
  kLabelOff = 15,
  kLabelDictOff = 16,
  kLabelDictBytes = 17,
  kAttrDictOff = 18,
  kAttrDictBytes = 19,
};
constexpr uint32_t kSectionCount = 19;

struct FileHeader {
  char magic[8];
  uint32_t version;
  uint32_t endian;
  uint32_t view;
  uint32_t section_count;
  uint64_t file_bytes;      // total size: the truncation check
  uint64_t table_checksum;  // FNV-1a 64 over the section table bytes
};
static_assert(sizeof(FileHeader) == 40, "FileHeader must be packed");

struct SectionEntry {
  uint32_t id;
  uint32_t elem_bytes;
  uint64_t count;
  uint64_t offset;
  uint64_t checksum;  // FNV-1a 64 over the payload bytes
};
static_assert(sizeof(SectionEntry) == 32, "SectionEntry must be packed");

uint64_t Fnv1a(const void* data, size_t n,
               uint64_t h = 14695981039346656037ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

bool HostIsLittleEndian() {
  const uint32_t probe = 1;
  unsigned char byte0;
  std::memcpy(&byte0, &probe, 1);
  return byte0 == 1;
}

/// Flattens a Dictionary into (offsets, bytes) CSR form.
Status DictToArrays(const Dictionary& dict, std::vector<uint32_t>* off,
                    std::string* bytes) {
  off->clear();
  bytes->clear();
  off->push_back(0);
  for (size_t i = 0; i < dict.size(); ++i) {
    bytes->append(dict.NameOf(static_cast<uint32_t>(i)));
    if (bytes->size() > std::numeric_limits<uint32_t>::max()) {
      return Status::Internal("dictionary exceeds 4 GiB");
    }
    off->push_back(static_cast<uint32_t>(bytes->size()));
  }
  return Status::OK();
}

/// Slices a flattened dictionary into per-id names.
Status SliceDict(const std::vector<uint32_t>& off, std::string_view bytes,
                 std::vector<std::string_view>* names) {
  names->clear();
  for (size_t i = 0; i + 1 < off.size(); ++i) {
    if (off[i] > off[i + 1] || off[i + 1] > bytes.size()) {
      return Status::Corruption("dictionary offsets out of range");
    }
    names->push_back(bytes.substr(off[i], off[i + 1] - off[i]));
  }
  return Status::OK();
}

/// Checks that interning `names` in id order into `dict` would land every
/// name on its file id, WITHOUT mutating anything — so a load that fails
/// a later validation leaves the caller's schema untouched. Requires:
/// names are pairwise distinct, the existing dictionary entries are a
/// byte-exact prefix, and the remaining names are absent (they then
/// intern to exactly their index, by induction).
Status CheckDictCompatible(const std::vector<std::string_view>& names,
                           const Dictionary& dict) {
  std::unordered_set<std::string_view> seen;
  for (size_t i = 0; i < names.size(); ++i) {
    if (!seen.insert(names[i]).second) {
      return Status::Corruption("duplicate snapshot dictionary name \"" +
                                std::string(names[i]) + "\"");
    }
    if (i < dict.size()) {
      if (dict.NameOf(static_cast<uint32_t>(i)) != names[i]) {
        return Status::Corruption(
            "snapshot dictionary conflicts with the supplied schema (id " +
            std::to_string(i) + " is \"" +
            dict.NameOf(static_cast<uint32_t>(i)) + "\", file expects \"" +
            std::string(names[i]) + "\")");
      }
    } else if (dict.Find(names[i]).has_value()) {
      return Status::Corruption(
          "snapshot dictionary conflicts with the supplied schema (\"" +
          std::string(names[i]) + "\" is already interned to id " +
          std::to_string(*dict.Find(names[i])) + ", file expects " +
          std::to_string(i) + ")");
    }
  }
  return Status::OK();
}

}  // namespace

/// The one friend of GraphSnapshot: packs its private CSR arrays into the
/// section container and rebuilds them on load.
class SnapshotCodec {
 public:
  static StatusOr<std::string> Serialize(const GraphSnapshot& snap);
  static StatusOr<std::unique_ptr<GraphSnapshot>> Deserialize(
      std::string_view bytes, SchemaPtr schema);
  static StatusOr<std::unique_ptr<Graph>> Materialize(
      const GraphSnapshot& snap);
  static uint64_t Fingerprint(const GraphSnapshot& snap);

 private:
  using LabelGroup = GraphSnapshot::Direction::LabelGroup;
  static_assert(sizeof(LabelGroup) == 12 &&
                    std::is_trivially_copyable<LabelGroup>::value,
                "LabelGroup is memcpy-serialized");
};

StatusOr<std::string> SnapshotCodec::Serialize(const GraphSnapshot& snap) {
  if (!HostIsLittleEndian()) {
    return Status::Unimplemented("snapshot format is little-endian only");
  }
  const size_t num_attrs = snap.attrs_.size();
  std::vector<uint32_t> attr_keys;
  std::vector<uint8_t> attr_tags;
  std::vector<int64_t> attr_vals;
  std::vector<uint32_t> str_off{0};
  std::string str_bytes;
  attr_keys.reserve(num_attrs);
  attr_tags.reserve(num_attrs);
  attr_vals.reserve(num_attrs);
  for (const auto& [attr, val] : snap.attrs_) {
    attr_keys.push_back(attr);
    if (val.is_int()) {
      attr_tags.push_back(0);
      attr_vals.push_back(val.AsInt());
    } else {
      attr_tags.push_back(1);
      attr_vals.push_back(static_cast<int64_t>(str_off.size() - 1));
      str_bytes.append(val.AsString());
      if (str_bytes.size() > std::numeric_limits<uint32_t>::max()) {
        return Status::Internal("attribute string pool exceeds 4 GiB");
      }
      str_off.push_back(static_cast<uint32_t>(str_bytes.size()));
    }
  }
  std::vector<uint32_t> label_dict_off, attr_dict_off;
  std::string label_dict_bytes, attr_dict_bytes;
  NGD_RETURN_IF_ERROR(DictToArrays(snap.schema_->labels(), &label_dict_off,
                                   &label_dict_bytes));
  NGD_RETURN_IF_ERROR(
      DictToArrays(snap.schema_->attrs(), &attr_dict_off, &attr_dict_bytes));

  struct SectionSpec {
    uint32_t id;
    uint32_t elem_bytes;
    uint64_t count;
    const void* data;
  };
  const SectionSpec specs[kSectionCount] = {
      {kNodeLabels, sizeof(LabelId), snap.node_labels_.size(),
       snap.node_labels_.data()},
      {kOutNbr, sizeof(NodeId), snap.out_.nbr.size(), snap.out_.nbr.data()},
      {kOutGroups, sizeof(LabelGroup), snap.out_.groups.size(),
       snap.out_.groups.data()},
      {kOutGroupOff, sizeof(uint32_t), snap.out_.group_off.size(),
       snap.out_.group_off.data()},
      {kInNbr, sizeof(NodeId), snap.in_.nbr.size(), snap.in_.nbr.data()},
      {kInGroups, sizeof(LabelGroup), snap.in_.groups.size(),
       snap.in_.groups.data()},
      {kInGroupOff, sizeof(uint32_t), snap.in_.group_off.size(),
       snap.in_.group_off.data()},
      {kAttrOff, sizeof(uint32_t), snap.attr_off_.size(),
       snap.attr_off_.data()},
      {kAttrKeys, sizeof(uint32_t), attr_keys.size(), attr_keys.data()},
      {kAttrTags, sizeof(uint8_t), attr_tags.size(), attr_tags.data()},
      {kAttrVals, sizeof(int64_t), attr_vals.size(), attr_vals.data()},
      {kStrOff, sizeof(uint32_t), str_off.size(), str_off.data()},
      {kStrBytes, 1, str_bytes.size(), str_bytes.data()},
      {kLabelNodes, sizeof(NodeId), snap.label_nodes_.size(),
       snap.label_nodes_.data()},
      {kLabelOff, sizeof(uint32_t), snap.label_off_.size(),
       snap.label_off_.data()},
      {kLabelDictOff, sizeof(uint32_t), label_dict_off.size(),
       label_dict_off.data()},
      {kLabelDictBytes, 1, label_dict_bytes.size(), label_dict_bytes.data()},
      {kAttrDictOff, sizeof(uint32_t), attr_dict_off.size(),
       attr_dict_off.data()},
      {kAttrDictBytes, 1, attr_dict_bytes.size(), attr_dict_bytes.data()},
  };

  SectionEntry table[kSectionCount];
  uint64_t offset = sizeof(FileHeader) + sizeof(table);
  for (size_t s = 0; s < kSectionCount; ++s) {
    offset = (offset + 7) & ~uint64_t{7};
    table[s].id = specs[s].id;
    table[s].elem_bytes = specs[s].elem_bytes;
    table[s].count = specs[s].count;
    table[s].offset = offset;
    table[s].checksum =
        Fnv1a(specs[s].data, specs[s].elem_bytes * specs[s].count);
    offset += specs[s].elem_bytes * specs[s].count;
  }

  FileHeader header;
  std::memcpy(header.magic, kSnapshotMagic, sizeof(header.magic));
  header.version = kSnapshotFormatVersion;
  header.endian = kEndianMarker;
  header.view = static_cast<uint32_t>(snap.view_);
  header.section_count = kSectionCount;
  header.file_bytes = offset;
  header.table_checksum = Fnv1a(table, sizeof(table));

  std::string out(offset, '\0');
  std::memcpy(&out[0], &header, sizeof(header));
  std::memcpy(&out[sizeof(header)], table, sizeof(table));
  for (size_t s = 0; s < kSectionCount; ++s) {
    const uint64_t bytes = specs[s].elem_bytes * specs[s].count;
    if (bytes > 0) std::memcpy(&out[table[s].offset], specs[s].data, bytes);
  }
  return out;
}

StatusOr<std::unique_ptr<GraphSnapshot>> SnapshotCodec::Deserialize(
    std::string_view bytes, SchemaPtr schema) {
  if (!HostIsLittleEndian()) {
    return Status::Unimplemented("snapshot format is little-endian only");
  }
  if (schema == nullptr) {
    return Status::InvalidArgument("null schema");
  }
  if (bytes.size() < sizeof(FileHeader)) {
    return Status::Corruption("truncated snapshot: " +
                              std::to_string(bytes.size()) +
                              " bytes is smaller than the header");
  }
  FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (std::memcmp(header.magic, kSnapshotMagic, sizeof(header.magic)) != 0) {
    return Status::Corruption("not a snapshot file (bad magic)");
  }
  if (header.endian != kEndianMarker) {
    return Status::Corruption("snapshot byte order mismatch");
  }
  if (header.version != kSnapshotFormatVersion) {
    return Status::Corruption("unsupported snapshot format version " +
                              std::to_string(header.version) +
                              " (this build reads version " +
                              std::to_string(kSnapshotFormatVersion) + ")");
  }
  if (header.view > static_cast<uint32_t>(GraphView::kNew)) {
    return Status::Corruption("bad snapshot view tag");
  }
  if (header.section_count != kSectionCount) {
    return Status::Corruption("snapshot section count mismatch");
  }
  if (header.file_bytes != bytes.size()) {
    return Status::Corruption(
        "truncated snapshot: header declares " +
        std::to_string(header.file_bytes) + " bytes, file has " +
        std::to_string(bytes.size()));
  }
  SectionEntry table[kSectionCount];
  if (bytes.size() < sizeof(FileHeader) + sizeof(table)) {
    return Status::Corruption("truncated snapshot: section table cut off");
  }
  std::memcpy(table, bytes.data() + sizeof(FileHeader), sizeof(table));
  if (Fnv1a(table, sizeof(table)) != header.table_checksum) {
    return Status::Corruption("snapshot section table checksum mismatch");
  }

  const SectionEntry* by_id[kSectionCount + 1] = {nullptr};
  for (const SectionEntry& e : table) {
    if (e.id < 1 || e.id > kSectionCount) {
      return Status::Corruption("unknown snapshot section id " +
                                std::to_string(e.id));
    }
    if (by_id[e.id] != nullptr) {
      return Status::Corruption("duplicate snapshot section id " +
                                std::to_string(e.id));
    }
    // Divide, don't multiply: elem_bytes * count could wrap uint64 and
    // sneak a huge count past the bounds check.
    if (e.elem_bytes == 0 || e.offset > bytes.size() ||
        e.count > (bytes.size() - e.offset) / e.elem_bytes) {
      return Status::Corruption("snapshot section " + std::to_string(e.id) +
                                " extends past end of file");
    }
    const uint64_t len = e.elem_bytes * e.count;
    if (Fnv1a(bytes.data() + e.offset, len) != e.checksum) {
      return Status::Corruption("checksum mismatch in snapshot section " +
                                std::to_string(e.id));
    }
    by_id[e.id] = &e;
  }

  auto copy_section = [&](uint32_t id, auto* out) -> Status {
    using Elem = typename std::decay_t<decltype(*out)>::value_type;
    const SectionEntry& e = *by_id[id];
    if (e.elem_bytes != sizeof(Elem)) {
      return Status::Corruption("snapshot section " + std::to_string(id) +
                                " element size mismatch");
    }
    out->resize(e.count);
    if (e.count > 0) {
      std::memcpy(&(*out)[0], bytes.data() + e.offset,
                  e.count * sizeof(Elem));
    }
    return Status::OK();
  };
#define NGD_COPY_SECTION(id, vec) \
  NGD_RETURN_IF_ERROR(copy_section(id, &(vec)))

  // Private ctor: make_unique cannot reach it. ngdlint:allow(naked-new)
  std::unique_ptr<GraphSnapshot> snap(new GraphSnapshot());
  snap->schema_ = schema;
  snap->view_ = static_cast<GraphView>(header.view);
  std::vector<uint32_t> attr_keys;
  std::vector<uint8_t> attr_tags;
  std::vector<int64_t> attr_vals;
  std::vector<uint32_t> str_off, label_dict_off, attr_dict_off;
  std::string str_bytes, label_dict_bytes, attr_dict_bytes;

  NGD_COPY_SECTION(kNodeLabels, snap->node_labels_);
  NGD_COPY_SECTION(kOutNbr, snap->out_.nbr);
  NGD_COPY_SECTION(kOutGroups, snap->out_.groups);
  NGD_COPY_SECTION(kOutGroupOff, snap->out_.group_off);
  NGD_COPY_SECTION(kInNbr, snap->in_.nbr);
  NGD_COPY_SECTION(kInGroups, snap->in_.groups);
  NGD_COPY_SECTION(kInGroupOff, snap->in_.group_off);
  NGD_COPY_SECTION(kAttrOff, snap->attr_off_);
  NGD_COPY_SECTION(kAttrKeys, attr_keys);
  NGD_COPY_SECTION(kAttrTags, attr_tags);
  NGD_COPY_SECTION(kAttrVals, attr_vals);
  NGD_COPY_SECTION(kStrOff, str_off);
  NGD_COPY_SECTION(kStrBytes, str_bytes);
  NGD_COPY_SECTION(kLabelNodes, snap->label_nodes_);
  NGD_COPY_SECTION(kLabelOff, snap->label_off_);
  NGD_COPY_SECTION(kLabelDictOff, label_dict_off);
  NGD_COPY_SECTION(kLabelDictBytes, label_dict_bytes);
  NGD_COPY_SECTION(kAttrDictOff, attr_dict_off);
  NGD_COPY_SECTION(kAttrDictBytes, attr_dict_bytes);
#undef NGD_COPY_SECTION

  // Dictionaries are sliced and compatibility-checked up front (so
  // label/attr id bounds can be validated against the final alphabet
  // sizes) but interned into the caller's schema only after EVERY
  // validation below has passed — a rejected file must leave the shared
  // schema untouched.
  if (label_dict_off.empty() || label_dict_off[0] != 0 ||
      attr_dict_off.empty() || attr_dict_off[0] != 0) {
    return Status::Corruption("malformed snapshot dictionary offsets");
  }
  std::vector<std::string_view> label_names, attr_names;
  NGD_RETURN_IF_ERROR(SliceDict(label_dict_off, label_dict_bytes,
                                &label_names));
  NGD_RETURN_IF_ERROR(SliceDict(attr_dict_off, attr_dict_bytes,
                                &attr_names));
  NGD_RETURN_IF_ERROR(CheckDictCompatible(label_names, schema->labels()));
  NGD_RETURN_IF_ERROR(CheckDictCompatible(attr_names, schema->attrs()));
  const size_t num_labels = label_names.size();
  const size_t num_attr_names = attr_names.size();

  // ---- Structural invariants the matching engine relies on ----------------
  const size_t n = snap->node_labels_.size();
  auto corrupt = [](const char* what) {
    return Status::Corruption(std::string("snapshot invariant violated: ") +
                              what);
  };
  for (LabelId l : snap->node_labels_) {
    if (l >= num_labels) return corrupt("node label id out of range");
  }
  auto check_direction = [&](const GraphSnapshot::Direction& d) -> Status {
    if (d.group_off.size() != n + 1) {
      return corrupt("group offset array has wrong length");
    }
    if (n > 0 && (d.group_off[0] != 0 || d.group_off[n] != d.groups.size())) {
      return corrupt("group offsets do not tile the group array");
    }
    if (n == 0 && !d.groups.empty()) {
      return corrupt("adjacency groups without nodes");
    }
    uint32_t running = 0;
    for (size_t v = 0; v < n; ++v) {
      // Bound-check BEFORE the dereferencing loop below: a spiked
      // intermediate offset must not drive an out-of-range groups[] read.
      if (d.group_off[v] > d.group_off[v + 1] ||
          d.group_off[v + 1] > d.groups.size()) {
        return corrupt("group offsets decrease or overrun the group array");
      }
      LabelId prev_label = 0;
      for (uint32_t gi = d.group_off[v]; gi < d.group_off[v + 1]; ++gi) {
        const LabelGroup& group = d.groups[gi];
        if (group.label >= num_labels) {
          return corrupt("adjacency label id out of range");
        }
        if (gi > d.group_off[v] && group.label <= prev_label) {
          return corrupt("label groups not ascending within a node");
        }
        prev_label = group.label;
        if (group.begin != running || group.end < group.begin ||
            group.end > d.nbr.size()) {
          return corrupt("label group range does not tile the neighbor "
                         "array");
        }
        for (uint32_t i = group.begin; i < group.end; ++i) {
          if (d.nbr[i] >= n) return corrupt("neighbor id out of range");
          if (i > group.begin && d.nbr[i] <= d.nbr[i - 1]) {
            return corrupt("neighbors not strictly ascending in a range");
          }
        }
        running = group.end;
      }
    }
    if (running != d.nbr.size()) {
      return corrupt("neighbor array has unreferenced tail");
    }
    return Status::OK();
  };
  NGD_RETURN_IF_ERROR(check_direction(snap->out_));
  NGD_RETURN_IF_ERROR(check_direction(snap->in_));
  if (snap->out_.nbr.size() != snap->in_.nbr.size()) {
    return corrupt("out/in edge counts disagree");
  }
  // in_ must be the exact transpose of out_. The canonical per-direction
  // invariants above make each direction a unique function of its edge
  // multiset, so commutative multiset equality of (src, label, dst)
  // triples is an exact transpose check (modulo hash collisions, ample
  // for the buggy-writer threat the checksums cannot cover) — one O(|E|)
  // pass, no allocation.
  {
    auto mix_triple = [](NodeId src, LabelId label, NodeId dst) {
      uint64_t x = (uint64_t{src} << 32) | dst;
      x ^= uint64_t{label} * 0x9e3779b97f4a7c15ULL;
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      x *= 0x94d049bb133111ebULL;
      x ^= x >> 31;
      return x;
    };
    uint64_t out_hash = 0;
    uint64_t in_hash = 0;
    for (size_t v = 0; v < n; ++v) {
      const NodeId node = static_cast<NodeId>(v);
      for (uint32_t gi = snap->out_.group_off[v];
           gi < snap->out_.group_off[v + 1]; ++gi) {
        const LabelGroup& group = snap->out_.groups[gi];
        for (uint32_t i = group.begin; i < group.end; ++i) {
          out_hash += mix_triple(node, group.label, snap->out_.nbr[i]);
        }
      }
      for (uint32_t gi = snap->in_.group_off[v];
           gi < snap->in_.group_off[v + 1]; ++gi) {
        const LabelGroup& group = snap->in_.groups[gi];
        for (uint32_t i = group.begin; i < group.end; ++i) {
          in_hash += mix_triple(snap->in_.nbr[i], group.label, node);
        }
      }
    }
    if (out_hash != in_hash) {
      return corrupt("in-adjacency is not the transpose of the "
                     "out-adjacency");
    }
  }

  if (snap->attr_off_.size() != n + 1 || snap->attr_off_[0] != 0 ||
      snap->attr_off_[n] != attr_keys.size()) {
    return corrupt("attribute offsets malformed");
  }
  if (attr_tags.size() != attr_keys.size() ||
      attr_vals.size() != attr_keys.size()) {
    return corrupt("attribute arrays disagree on length");
  }
  if (str_off.empty() || str_off[0] != 0 ||
      str_off.back() != str_bytes.size()) {
    return corrupt("string pool offsets malformed");
  }
  for (size_t i = 0; i + 1 < str_off.size(); ++i) {
    if (str_off[i] > str_off[i + 1]) {
      return corrupt("string pool offsets decrease");
    }
  }
  const size_t num_strings = str_off.size() - 1;
  snap->attrs_.reserve(attr_keys.size());
  for (size_t v = 0; v < n; ++v) {
    if (snap->attr_off_[v] > snap->attr_off_[v + 1] ||
        snap->attr_off_[v + 1] > attr_keys.size()) {
      return corrupt("attribute offsets decrease or overrun the arrays");
    }
    for (uint32_t i = snap->attr_off_[v]; i < snap->attr_off_[v + 1]; ++i) {
      if (attr_keys[i] >= num_attr_names) {
        return corrupt("attribute id out of range");
      }
      if (i > snap->attr_off_[v] && attr_keys[i] <= attr_keys[i - 1]) {
        return corrupt("attribute tuple not AttrId-sorted");
      }
      if (attr_tags[i] == 0) {
        snap->attrs_.emplace_back(attr_keys[i], Value(attr_vals[i]));
      } else if (attr_tags[i] == 1) {
        const uint64_t s = static_cast<uint64_t>(attr_vals[i]);
        if (attr_vals[i] < 0 || s >= num_strings) {
          return corrupt("string attribute index out of range");
        }
        snap->attrs_.emplace_back(
            attr_keys[i],
            Value(str_bytes.substr(str_off[s], str_off[s + 1] - str_off[s])));
      } else {
        return corrupt("unknown attribute value tag");
      }
    }
  }

  if (snap->label_off_.size() != num_labels + 1 || snap->label_off_[0] != 0 ||
      snap->label_off_[num_labels] != snap->label_nodes_.size() ||
      snap->label_nodes_.size() != n) {
    return corrupt("label candidate arrays malformed");
  }
  for (size_t l = 0; l < num_labels; ++l) {
    if (snap->label_off_[l] > snap->label_off_[l + 1] ||
        snap->label_off_[l + 1] > snap->label_nodes_.size()) {
      return corrupt("label candidate offsets decrease or overrun");
    }
    for (uint32_t i = snap->label_off_[l]; i < snap->label_off_[l + 1]; ++i) {
      const NodeId v = snap->label_nodes_[i];
      if (v >= n || snap->node_labels_[v] != l) {
        return corrupt("label candidate array disagrees with node labels");
      }
      if (i > snap->label_off_[l] &&
          snap->label_nodes_[i] <= snap->label_nodes_[i - 1]) {
        return corrupt("label candidates not strictly ascending");
      }
    }
  }

  // Every validation passed — only now touch the caller's schema.
  // CheckDictCompatible guarantees each Intern lands on its file id.
  for (const std::string_view& name : label_names) {
    schema->InternLabel(name);
  }
  for (const std::string_view& name : attr_names) {
    schema->InternAttr(name);
  }
  return snap;
}

StatusOr<std::unique_ptr<Graph>> SnapshotCodec::Materialize(
    const GraphSnapshot& snap) {
  auto g = std::make_unique<Graph>(snap.schema_);
  const size_t n = snap.NumNodes();
  for (size_t v = 0; v < n; ++v) {
    g->AddNode(snap.node_labels_[v]);
  }
  for (NodeId v = 0; v < n; ++v) {
    for (uint32_t i = snap.attr_off_[v]; i < snap.attr_off_[v + 1]; ++i) {
      g->SetAttr(v, snap.attrs_[i].first, snap.attrs_[i].second);
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    for (uint32_t gi = snap.out_.group_off[v]; gi < snap.out_.group_off[v + 1];
         ++gi) {
      const auto& group = snap.out_.groups[gi];
      for (uint32_t i = group.begin; i < group.end; ++i) {
        Status s = g->AddEdge(v, snap.out_.nbr[i], group.label);
        if (!s.ok()) {
          return Status::Internal("snapshot materialization: " +
                                  s.ToString());
        }
      }
    }
  }
  return g;
}

uint64_t SnapshotCodec::Fingerprint(const GraphSnapshot& snap) {
  const size_t n = snap.NumNodes();
  uint64_t h = Fnv1a(&n, sizeof(n));
  if (n > 0) {
    h = Fnv1a(snap.node_labels_.data(), n * sizeof(LabelId), h);
  }
  for (NodeId v = 0; v < n; ++v) {
    for (uint32_t i = snap.attr_off_[v]; i < snap.attr_off_[v + 1]; ++i) {
      const auto& [attr, val] = snap.attrs_[i];
      h = Fnv1a(&attr, sizeof(attr), h);
      if (val.is_int()) {
        const int64_t x = val.AsInt();
        h = Fnv1a("i", 1, h);
        h = Fnv1a(&x, sizeof(x), h);
      } else {
        h = Fnv1a("s", 1, h);
        h = Fnv1a(val.AsString().data(), val.AsString().size(), h);
        h = Fnv1a("\0", 1, h);
      }
    }
    for (uint32_t gi = snap.out_.group_off[v]; gi < snap.out_.group_off[v + 1];
         ++gi) {
      const auto& group = snap.out_.groups[gi];
      h = Fnv1a(&group.label, sizeof(group.label), h);
      const uint32_t count = group.end - group.begin;
      h = Fnv1a(&count, sizeof(count), h);
      h = Fnv1a(snap.out_.nbr.data() + group.begin, count * sizeof(NodeId),
                h);
    }
  }
  return h;
}

StatusOr<std::string> SerializeSnapshot(const GraphSnapshot& snap) {
  return SnapshotCodec::Serialize(snap);
}

StatusOr<std::unique_ptr<GraphSnapshot>> DeserializeSnapshot(
    std::string_view bytes, SchemaPtr schema) {
  return SnapshotCodec::Deserialize(bytes, std::move(schema));
}

Status SaveSnapshotFile(const GraphSnapshot& snap, const std::string& path) {
  NGD_ASSIGN_OR_RETURN(std::string image, SerializeSnapshot(snap));
  // Atomic replace: a crash mid-save must leave the previous file intact.
  return WriteFileAtomic(path, image, NGD_FAILPOINT("snapshot_write"));
}

StatusOr<std::unique_ptr<GraphSnapshot>> LoadSnapshotFile(
    const std::string& path, SchemaPtr schema) {
  // One sized bulk read — the load cost the format is designed around.
  NGD_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  return DeserializeSnapshot(bytes, std::move(schema));
}

bool SniffSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  char magic[sizeof(kSnapshotMagic)];
  in.read(magic, sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         std::memcmp(magic, kSnapshotMagic, sizeof(magic)) == 0;
}

StatusOr<std::unique_ptr<Graph>> MaterializeGraph(const GraphSnapshot& snap) {
  return SnapshotCodec::Materialize(snap);
}

uint64_t SnapshotFingerprint(const GraphSnapshot& snap) {
  return SnapshotCodec::Fingerprint(snap);
}

}  // namespace ngd
