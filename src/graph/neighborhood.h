// d-hop neighborhood extraction.
//
// Localizable incremental detection (paper §6.1) confines all work to the
// d_Σ-neighbors of the nodes touched by ΔG: G_d(v) is the subgraph induced
// by V_d(v), the nodes within d hops of v treating G as undirected. The
// candidate-neighborhood set N_C(ΔG, Σ) replicated by PIncDect is the union
// of these balls over all update pivots.

#ifndef NGD_GRAPH_NEIGHBORHOOD_H_
#define NGD_GRAPH_NEIGHBORHOOD_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ngd {

/// Membership mask over node ids, with the member list kept alongside so
/// both O(1) tests and iteration are cheap.
class NodeSet {
 public:
  explicit NodeSet(size_t num_nodes) : mask_(num_nodes, 0) {}

  bool Contains(NodeId v) const { return v < mask_.size() && mask_[v] != 0; }
  void Add(NodeId v) {
    if (v >= mask_.size()) mask_.resize(v + 1, 0);
    if (!mask_[v]) {
      mask_[v] = 1;
      members_.push_back(v);
    }
  }
  const std::vector<NodeId>& members() const { return members_; }
  size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

 private:
  std::vector<uint8_t> mask_;
  std::vector<NodeId> members_;
};

/// Nodes within `d` hops (undirected) of any seed, in `view`.
/// Includes the seeds themselves.
NodeSet DHopNeighborhood(const Graph& g, const std::vector<NodeId>& seeds,
                         int d, GraphView view);

/// Total adjacency size of the set (the |G_dΣ(ΔG)| cost measure).
size_t NeighborhoodAdjSize(const Graph& g, const NodeSet& set);

}  // namespace ngd

#endif  // NGD_GRAPH_NEIGHBORHOOD_H_
