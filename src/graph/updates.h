// Batch updates ΔG and their random generation.
//
// A unit update is an edge insertion or deletion (paper §5.2); insertions
// may introduce new nodes carrying labels and attributes. The generator
// reproduces §7's setup: ΔG is controlled by |ΔG| (a fraction of |E|) and
// the ratio γ of insertions to deletions (γ = 1 keeps |G| unchanged).

#ifndef NGD_GRAPH_UPDATES_H_
#define NGD_GRAPH_UPDATES_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace ngd {

enum class UpdateKind : uint8_t { kInsert = 0, kDelete = 1 };

struct UnitUpdate {
  UpdateKind kind;
  NodeId src;
  NodeId dst;
  LabelId label;
};

struct UpdateBatch {
  std::vector<UnitUpdate> updates;

  size_t size() const { return updates.size(); }
  bool empty() const { return updates.empty(); }
  size_t NumInsertions() const;
  size_t NumDeletions() const;
};

/// Applies the batch as a pending overlay on `g` (InsertEdge/DeleteEdge).
/// Updates that became no-ops (insert of an existing edge, delete of a
/// missing edge) are removed from the batch so detection sees only
/// effective updates.
///
/// Partial-failure contract: on the first real error, application stops
/// and the error is returned; the records applied before it stay applied,
/// and `batch->updates` is truncated to exactly that effective prefix —
/// so the batch always describes the overlay actually on `g`, and the
/// caller can either run detection on the prefix or `g->Rollback()`.
/// `failed_record` (optional) receives the index of the offending record
/// in the original batch (unchanged on success).
[[nodiscard]] Status ApplyUpdateBatch(Graph* g, UpdateBatch* batch,
                        size_t* failed_record = nullptr);

struct UpdateGenOptions {
  /// |ΔG| as a fraction of the current |E|.
  double fraction = 0.1;
  /// Fraction of unit updates that are insertions; γ in the paper equals
  /// insert_fraction / (1 - insert_fraction). 0.5 keeps |G| unchanged.
  double insert_fraction = 0.5;
  /// Probability that an insertion attaches a freshly created node (which
  /// clones the label and attribute shape of an existing node).
  double new_node_prob = 0.1;
  uint64_t seed = 42;
};

/// Generates a random batch: deletions pick existing base edges; insertions
/// re-wire endpoints of existing edges (same edge label, same endpoint
/// labels) so that inserted edges plausibly trigger pattern matches, the
/// way real graph updates do.
UpdateBatch GenerateUpdateBatch(Graph* g, const UpdateGenOptions& opts);

}  // namespace ngd

#endif  // NGD_GRAPH_UPDATES_H_
