// Exact rational arithmetic for NGD expression evaluation.
//
// NGD linear expressions allow division by integer constants (e ÷ c).
// Evaluating with integer truncation would make, e.g., (x.A ÷ 2) × 2 = x.A
// spuriously fail for odd x.A, so expressions are evaluated exactly over
// Q with int64 numerator/denominator and __int128 cross-multiplication for
// overflow-free comparison. Values stay tiny in practice (attribute values
// and small rule constants), so int64 components are ample.

#ifndef NGD_UTIL_RATIONAL_H_
#define NGD_UTIL_RATIONAL_H_

#include <cstdint>
#include <string>

namespace ngd {

class Rational {
 public:
  constexpr Rational() : num_(0), den_(1) {}
  constexpr Rational(int64_t value) : num_(value), den_(1) {}  // NOLINT
  Rational(int64_t num, int64_t den);

  int64_t num() const { return num_; }
  int64_t den() const { return den_; }

  bool IsInteger() const { return den_ == 1; }
  /// Integer value; requires IsInteger().
  int64_t ToInteger() const;
  /// Nearest-double approximation for reporting/metrics — anything that
  /// must stay exact stays in Rational. Contract: never overflows or
  /// loses the sign (|num/den| ≤ |num| < 2^63, well inside double
  /// range); computed in the widest hardware float so both int64
  /// components are taken EXACTLY where long double has a ≥ 64-bit
  /// mantissa (x86-64), giving ≤ 1 ulp error even for huge numerators.
  /// The naive double(num)/double(den) it replaces silently rounded each
  /// component to 53 bits first, compounding to multi-ulp error above
  /// 2^53 (regression-tested in tests/util_test.cc). On platforms where
  /// long double is double-width this degrades gracefully to that naive
  /// value.
  double ToDouble() const {
    return static_cast<double>(static_cast<long double>(num_) /
                               static_cast<long double>(den_));
  }

  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  /// Division; requires o != 0.
  Rational operator/(const Rational& o) const;
  Rational operator-() const;
  Rational Abs() const { return num_ < 0 ? -*this : *this; }

  bool operator==(const Rational& o) const;
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator<=(const Rational& o) const;
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator>=(const Rational& o) const { return o <= *this; }

  std::string ToString() const;

 private:
  struct ReducedTag {};
  /// Components already in lowest terms with den > 0; skips Normalize.
  Rational(ReducedTag, int64_t num, int64_t den) : num_(num), den_(den) {}

  /// Reduces an exact 128-bit numerator/denominator (d may be negative)
  /// and narrows to int64, aborting with `what` if unrepresentable.
  static Rational FromExact128(__int128 n, __int128 d, const char* what);

  void Normalize();

  int64_t num_;
  int64_t den_;  // > 0 always
};

}  // namespace ngd

#endif  // NGD_UTIL_RATIONAL_H_
