// Exact rational arithmetic for NGD expression evaluation.
//
// NGD linear expressions allow division by integer constants (e ÷ c).
// Evaluating with integer truncation would make, e.g., (x.A ÷ 2) × 2 = x.A
// spuriously fail for odd x.A, so expressions are evaluated exactly over
// Q with int64 numerator/denominator and __int128 cross-multiplication for
// overflow-free comparison. Values stay tiny in practice (attribute values
// and small rule constants), so int64 components are ample.

#ifndef NGD_UTIL_RATIONAL_H_
#define NGD_UTIL_RATIONAL_H_

#include <cstdint>
#include <string>

namespace ngd {

class Rational {
 public:
  constexpr Rational() : num_(0), den_(1) {}
  constexpr Rational(int64_t value) : num_(value), den_(1) {}  // NOLINT
  Rational(int64_t num, int64_t den);

  int64_t num() const { return num_; }
  int64_t den() const { return den_; }

  bool IsInteger() const { return den_ == 1; }
  /// Integer value; requires IsInteger().
  int64_t ToInteger() const;
  double ToDouble() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  /// Division; requires o != 0.
  Rational operator/(const Rational& o) const;
  Rational operator-() const;
  Rational Abs() const { return num_ < 0 ? -*this : *this; }

  bool operator==(const Rational& o) const;
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator<=(const Rational& o) const;
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator>=(const Rational& o) const { return o <= *this; }

  std::string ToString() const;

 private:
  struct ReducedTag {};
  /// Components already in lowest terms with den > 0; skips Normalize.
  Rational(ReducedTag, int64_t num, int64_t den) : num_(num), den_(den) {}

  /// Reduces an exact 128-bit numerator/denominator (d may be negative)
  /// and narrows to int64, aborting with `what` if unrepresentable.
  static Rational FromExact128(__int128 n, __int128 d, const char* what);

  void Normalize();

  int64_t num_;
  int64_t den_;  // > 0 always
};

}  // namespace ngd

#endif  // NGD_UTIL_RATIONAL_H_
