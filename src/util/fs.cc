#include "util/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "util/failpoint.h"
#include "util/hash.h"

namespace ngd {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

std::string ParentDirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status WriteAllFd(int fd, std::string_view bytes) {
  const char* p = bytes.data();
  size_t left = bytes.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("write failed"));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteWithFailpoint(int fd, std::string_view bytes, const char* site,
                          bool* defer_sync_failure) {
  failpoint::Mode mode =
      site != nullptr ? failpoint::Hit(site) : failpoint::Mode::kNone;
  switch (mode) {
    case failpoint::Mode::kNone:
      return WriteAllFd(fd, bytes);
    case failpoint::Mode::kEnospc:
      return Status::ResourceExhausted(std::string("injected ENOSPC at ") +
                                       site);
    case failpoint::Mode::kShortWrite: {
      // A crash mid-write: only a prefix reaches the file.
      Status st = WriteAllFd(fd, bytes.substr(0, bytes.size() / 2));
      if (!st.ok()) return st;
      return Status::Internal(std::string("injected crash: short write at ") +
                              site);
    }
    case failpoint::Mode::kTornWrite: {
      // Full length reaches the file but the final sector never made it:
      // the tail reads back as zeros.
      std::string mutated(bytes);
      size_t tail = mutated.size() < 256 ? mutated.size() : 256;
      std::memset(mutated.data() + (mutated.size() - tail), 0, tail);
      Status st = WriteAllFd(fd, mutated);
      if (!st.ok()) return st;
      return Status::Internal(std::string("injected crash: torn write at ") +
                              site);
    }
    case failpoint::Mode::kBitFlip: {
      // Silent single-bit corruption; the write itself "succeeds".
      std::string mutated(bytes);
      if (!mutated.empty()) {
        uint64_t h = Fnv1a64(mutated.data(), mutated.size());
        size_t bit = static_cast<size_t>(h % (mutated.size() * 8));
        mutated[bit / 8] = static_cast<char>(
            static_cast<unsigned char>(mutated[bit / 8]) ^ (1u << (bit % 8)));
      }
      return WriteAllFd(fd, mutated);
    }
    case failpoint::Mode::kSyncFail: {
      Status st = WriteAllFd(fd, bytes);
      if (!st.ok()) return st;
      if (defer_sync_failure != nullptr) *defer_sync_failure = true;
      return Status::OK();
    }
  }
  return Status::Internal("unreachable failpoint mode");
}

Status SyncFdWithFailpoint(int fd, const char* site) {
  if (site != nullptr && failpoint::Hit(site) != failpoint::Mode::kNone) {
    return Status::Internal(std::string("injected fsync failure at ") + site);
  }
  if (::fsync(fd) != 0) return Status::Internal(Errno("fsync failed"));
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes,
                       const char* failpoint_site) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::NotFound(Errno("cannot open " + tmp));

  bool sync_fails = false;
  Status st = WriteWithFailpoint(fd, bytes, failpoint_site, &sync_fails);
  if (st.ok()) {
    if (sync_fails) {
      st = Status::Internal(std::string("injected fsync failure at ") +
                            (failpoint_site != nullptr ? failpoint_site : "?"));
    } else if (::fsync(fd) != 0) {
      st = Status::Internal(Errno("fsync failed for " + tmp));
    }
  }
  if (::close(fd) != 0 && st.ok()) {
    st = Status::Internal(Errno("close failed for " + tmp));
  }
  // On failure the tmp file stays behind, exactly as after a real crash;
  // `path` is untouched either way until the rename below.
  if (!st.ok()) return st;

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal(Errno("rename failed for " + path));
  }
  return FsyncParentDir(path);
}

Status FsyncParentDir(const std::string& path) {
  const std::string dir = ParentDirOf(path);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::OK();  // best effort
  (void)::fsync(fd);                // some filesystems reject dir fsync
  ::close(fd);
  return Status::OK();
}

}  // namespace ngd
