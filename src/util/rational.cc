#include "util/rational.h"

#include <cassert>
#include <numeric>

namespace ngd {

namespace {
using Int128 = __int128;
}  // namespace

Rational::Rational(int64_t num, int64_t den) : num_(num), den_(den) {
  assert(den != 0 && "rational with zero denominator");
  Normalize();
}

void Rational::Normalize() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

int64_t Rational::ToInteger() const {
  assert(IsInteger());
  return num_;
}

Rational Rational::operator+(const Rational& o) const {
  Int128 n = Int128(num_) * o.den_ + Int128(o.num_) * den_;
  Int128 d = Int128(den_) * o.den_;
  // Reduce in 128 bits before narrowing; operands in NGD evaluation are
  // small (attribute values x small constants), so this cannot overflow
  // int64 after reduction in practice.
  Int128 a = n < 0 ? -n : n;
  Int128 b = d;
  while (b != 0) {
    Int128 t = a % b;
    a = b;
    b = t;
  }
  if (a > 1) {
    n /= a;
    d /= a;
  }
  return Rational(static_cast<int64_t>(n), static_cast<int64_t>(d));
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  // Cross-reduce first to keep components small.
  Rational a(num_, o.den_);
  Rational b(o.num_, den_);
  return Rational(a.num_ * b.num_, a.den_ * b.den_);
}

Rational Rational::operator/(const Rational& o) const {
  assert(o.num_ != 0 && "division by zero rational");
  return *this * Rational(o.den_, o.num_);
}

bool Rational::operator==(const Rational& o) const {
  return num_ == o.num_ && den_ == o.den_;
}

bool Rational::operator<(const Rational& o) const {
  return Int128(num_) * o.den_ < Int128(o.num_) * den_;
}

bool Rational::operator<=(const Rational& o) const {
  return Int128(num_) * o.den_ <= Int128(o.num_) * den_;
}

std::string Rational::ToString() const {
  if (IsInteger()) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

}  // namespace ngd
