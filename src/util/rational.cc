#include "util/rational.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "util/int128.h"

namespace ngd {

namespace {

// Numeric invariants stay fatal in release builds: a Rational with a zero
// denominator (or a silently wrapped component) would turn detection into
// garbage answers, which is worse than stopping. assert() compiles out
// under NDEBUG, so these are hand-rolled.
[[noreturn]] void FatalRational(const char* msg) {
  std::fprintf(stderr, "ngd: fatal rational error: %s\n", msg);
  std::abort();
}

/// Narrows a 128-bit intermediate back to int64, aborting on overflow.
int64_t CheckedNarrow(Int128 v, const char* what) {
  if (v < INT64_MIN || v > INT64_MAX) FatalRational(what);
  return static_cast<int64_t>(v);
}

}  // namespace

Rational::Rational(int64_t num, int64_t den) : num_(num), den_(den) {
  if (den == 0) FatalRational("rational with zero denominator");
  Normalize();
}

void Rational::Normalize() {
  // Work in 128 bits throughout: negating num_ == INT64_MIN (directly or
  // via the den_ < 0 sign flip) is signed-overflow UB in 64 bits.
  Int128 n = num_;
  Int128 d = den_;
  if (d < 0) {
    n = -n;
    d = -d;
  }
  Int128 g = Gcd128(n < 0 ? -n : n, d);
  if (g > 1) {
    n /= g;
    d /= g;
  }
  if (n == 0) d = 1;
  num_ = CheckedNarrow(n, "normalization overflow");
  den_ = CheckedNarrow(d, "normalization overflow");
}

int64_t Rational::ToInteger() const {
  if (!IsInteger()) FatalRational("ToInteger on non-integer rational");
  return num_;
}

// Shared tail of the arithmetic operators: reduce the exact 128-bit
// result (d may be negative for division) and narrow. Narrowing aborts
// exactly when the REDUCED result is unrepresentable — operands in NGD
// evaluation are small (attribute values x small constants), so that
// means the caller's data is out of the supported domain.
Rational Rational::FromExact128(Int128 n, Int128 d, const char* what) {
  if (d < 0) {
    n = -n;
    d = -d;
  }
  Int128 g = Gcd128(n < 0 ? -n : n, d);
  if (g > 1) {
    n /= g;
    d /= g;
  }
  if (n == 0) d = 1;
  return Rational(ReducedTag{}, CheckedNarrow(n, what),
                  CheckedNarrow(d, what));
}

Rational Rational::operator+(const Rational& o) const {
  return FromExact128(Int128(num_) * o.den_ + Int128(o.num_) * den_,
                      Int128(den_) * o.den_, "addition overflow");
}

Rational Rational::operator-(const Rational& o) const {
  return FromExact128(Int128(num_) * o.den_ - Int128(o.num_) * den_,
                      Int128(den_) * o.den_, "subtraction overflow");
}

Rational Rational::operator-() const {
  return Rational(ReducedTag{},
                  CheckedNarrow(-Int128(num_), "negation overflow"), den_);
}

Rational Rational::operator*(const Rational& o) const {
  return FromExact128(Int128(num_) * o.num_, Int128(den_) * o.den_,
                      "multiplication overflow");
}

Rational Rational::operator/(const Rational& o) const {
  if (o.num_ == 0) FatalRational("division by zero rational");
  return FromExact128(Int128(num_) * o.den_, Int128(den_) * o.num_,
                      "division overflow");
}

bool Rational::operator==(const Rational& o) const {
  return num_ == o.num_ && den_ == o.den_;
}

bool Rational::operator<(const Rational& o) const {
  return Int128(num_) * o.den_ < Int128(o.num_) * den_;
}

bool Rational::operator<=(const Rational& o) const {
  return Int128(num_) * o.den_ <= Int128(o.num_) * den_;
}

std::string Rational::ToString() const {
  if (IsInteger()) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

}  // namespace ngd
