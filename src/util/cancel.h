// Cooperative cancellation and deadlines for detection runs.
//
// A serving process (ROADMAP item 1: the `ngdd` daemon) must be able to
// bound a detection call: a deadline-hit run returns an honest partial
// result (`truncated` flag + per-rule completion marks) instead of
// blocking indefinitely or aborting. The primitives here are threaded
// through DectOptions/IncDectOptions/PDectOptions/PIncDectOptions and
// checked inside the match-expansion inner loops and the work-stealing
// run loop.
//
// CancelToken is the shared stop flag (one writer wins, all readers see
// it); Deadline is a steady-clock budget; CancelCheck combines the two
// with a stride so the hot expansion loop pays one relaxed atomic load
// per step and touches the clock only every `stride` calls. When the
// deadline trips, CancelCheck broadcasts into the token so sibling
// workers polling the same token stop promptly without ever reading the
// clock themselves.

#ifndef NGD_UTIL_CANCEL_H_
#define NGD_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace ngd {

/// Shared stop flag. Cancel() is sticky until Reset(); safe to call from
/// any thread.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool IsCancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A point on the steady clock; default-constructed = no deadline.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  /// Deadline `ms` milliseconds from now. ms <= 0 is already expired.
  static Deadline After(int64_t ms) {
    Deadline d;
    d.armed_ = true;
    d.when_ = Clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  static Deadline Infinite() { return Deadline(); }

  bool armed() const { return armed_; }

  bool Expired() const { return armed_ && Clock::now() >= when_; }

  /// Seconds until expiry (negative once expired); +inf when unarmed.
  double RemainingSeconds() const {
    if (!armed_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(when_ - Clock::now()).count();
  }

 private:
  bool armed_ = false;
  Clock::time_point when_{};
};

/// Per-worker combined check over a shared token and a deadline. Not
/// thread-safe: each worker owns one. ShouldStop() is designed for inner
/// loops — a relaxed load of the token every call, a clock read every
/// `stride` calls, and a latched `stopped` state so a tripped check never
/// pays either again.
class CancelCheck {
 public:
  CancelCheck() = default;

  /// `token` may be null (deadline-only). Non-owning; must outlive the
  /// check. A deadline trip broadcasts into `token` (if any) so sibling
  /// workers sharing it stop without polling the clock.
  explicit CancelCheck(CancelToken* token, Deadline deadline = Deadline(),
                       uint32_t stride = 1024)
      : token_(token), deadline_(deadline), stride_(stride ? stride : 1) {}

  /// True once the run should wind down. Sticky.
  bool ShouldStop() {
    if (stopped_) return true;
    if (token_ != nullptr && token_->IsCancelled()) {
      stopped_ = true;
      return true;
    }
    if (deadline_.armed() && ++calls_ >= stride_) {
      calls_ = 0;
      if (deadline_.Expired()) {
        stopped_ = true;
        if (token_ != nullptr) token_->Cancel();
        return true;
      }
    }
    return false;
  }

  /// Latched result of the last ShouldStop() — no re-check.
  bool Stopped() const { return stopped_; }

  bool active() const { return token_ != nullptr || deadline_.armed(); }

 private:
  CancelToken* token_ = nullptr;
  Deadline deadline_{};
  uint32_t stride_ = 1024;
  uint32_t calls_ = 0;
  bool stopped_ = false;
};

}  // namespace ngd

#endif  // NGD_UTIL_CANCEL_H_
