// Durable file writes.
//
// Every persistent artifact (binary snapshots, fragment containers, the
// update journal on rotation) is replaced atomically: the image is
// written to `<path>.tmp`, fsync'd, renamed over `path`, and the parent
// directory is fsync'd — a crash at any point leaves either the old file
// or the new one, never a torn mix. The helpers also host the
// fault-injection hooks (util/failpoint.h): a named site threaded through
// the write path lets tests kill or corrupt the write at every stage and
// assert recovery.

#ifndef NGD_UTIL_FS_H_
#define NGD_UTIL_FS_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace ngd {

/// write(2) loop; retries partial writes and EINTR.
[[nodiscard]] Status WriteAllFd(int fd, std::string_view bytes);

/// Writes `bytes` to `fd`, honoring any failpoint armed at `site`
/// (nullptr = no injection):
///   short    — a prefix is written, then kInternal ("injected crash")
///   torn     — full length written with the tail zeroed, then kInternal
///   bitflip  — full length written with one bit flipped; returns OK
///              (silent corruption — the reader's checksums must catch it)
///   enospc   — nothing written, kResourceExhausted
///   syncfail — full clean write; *defer_sync_failure set so the caller's
///              next SyncFdWithFailpoint / fsync step reports the fault
[[nodiscard]] Status WriteWithFailpoint(int fd, std::string_view bytes, const char* site,
                          bool* defer_sync_failure);

/// fsync(2) as a Status; any mode armed at `site` makes it fail.
[[nodiscard]] Status SyncFdWithFailpoint(int fd, const char* site);

/// Atomic replace: tmp + write + fsync + rename + parent-dir fsync. On
/// any failure `path` is untouched (a stale `<path>.tmp` may remain, as
/// after a real crash; the next attempt truncates it). `failpoint_site`
/// names the injection site for the data write and its fsync.
[[nodiscard]] Status WriteFileAtomic(const std::string& path, std::string_view bytes,
                       const char* failpoint_site = nullptr);

/// fsync of the directory containing `path` (so a completed rename
/// survives power loss). Best effort: ENOTSUP-style failures are ignored.
[[nodiscard]] Status FsyncParentDir(const std::string& path);

}  // namespace ngd

#endif  // NGD_UTIL_FS_H_
