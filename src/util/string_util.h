// Small string helpers shared across modules (no external deps).

#ifndef NGD_UTIL_STRING_UTIL_H_
#define NGD_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ngd {

/// Splits on a single character; empty pieces are kept.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

/// Joins pieces with a separator.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

/// Parses a base-10 signed integer; rejects trailing garbage.
std::optional<int64_t> ParseInt64(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace ngd

#endif  // NGD_UTIL_STRING_UTIL_H_
