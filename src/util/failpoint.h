// Fault injection for the durability paths (update journal, snapshot and
// fragment writers).
//
// An IO routine marks each place a crash or device fault could bite with
// a named site:
//
//   switch (failpoint::Hit("wal_append")) { ... }
//
// When the registry is disabled (the default) a site costs one relaxed
// atomic load and fires nothing. Tests enable the registry and arm a
// fault either at a specific site (ArmSite) or at the N-th site traversal
// of the whole process (ArmNth) — the latter is what the crash-recovery
// sweep uses: run the workload once cleanly to count traversals, then
// re-run it once per traversal index with a kill armed there, recover,
// and compare against the oracle.
//
// The environment variable NGD_FAILPOINTS arms the registry without code
// changes, e.g.:
//
//   NGD_FAILPOINTS="snapshot_write=torn"       fire at every hit of a site
//   NGD_FAILPOINTS="wal_append=short:3"        fire at its 3rd hit
//   NGD_FAILPOINTS="*=enospc:7"                fire at the 7th traversal
//
// Modes: short (partial write then simulated crash), torn (full-length
// write with a zeroed tail, then crash), bitflip (single bit corrupted,
// write *succeeds* — silent corruption), enospc (no bytes written,
// kResourceExhausted), syncfail (write ok, fsync fails).

#ifndef NGD_UTIL_FAILPOINT_H_
#define NGD_UTIL_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

/// Marks a failpoint site string at its point of use:
///
///   WriteFileAtomic(path, image, NGD_FAILPOINT("snapshot_write"));
///
/// Expands to the string itself. It exists so tools/ngdlint can enumerate
/// every site in src/ and enforce that each one is armed by at least one
/// test under tests/ — a failpoint no test ever fires is untested crash
/// handling. New sites MUST use this marker (ngdlint only sees marked
/// sites).
#define NGD_FAILPOINT(site) site

namespace ngd {
namespace failpoint {

enum class Mode : uint8_t {
  kNone = 0,
  kShortWrite,
  kTornWrite,
  kBitFlip,
  kEnospc,
  kSyncFail,
};

/// Name for messages ("short", "torn", ...). kNone -> "none".
const char* ModeName(Mode m);

/// Master switch. Off (default): Hit() returns kNone and does not count.
void Enable(bool on);
bool Enabled();

/// Disarms everything, zeroes all counters, and disables the registry.
void Reset();

/// Fire `mode` at the given site. skip = number of hits of that site to
/// let pass first (0 = fire on the first hit). Enables the registry.
void ArmSite(std::string_view site, Mode mode, uint64_t skip = 0);

/// Fire `mode` at the n-th traversal of *any* site (1-based). Enables the
/// registry.
void ArmNth(Mode mode, uint64_t n);

/// Total site traversals since the last Reset() while enabled. A clean
/// run under Enable(true) with nothing armed yields the traversal count
/// the kill-at-every-failpoint sweep iterates over.
uint64_t Traversals();

/// Parses NGD_FAILPOINTS (see header comment) and arms accordingly.
/// Returns false (leaving the registry untouched) when the variable is
/// unset or malformed.
bool ArmFromEnv();

/// Called by IO code at each site. Returns the mode to inject now, or
/// kNone. A site-armed or nth-armed fault fires exactly once, then
/// disarms itself (the registry stays enabled and keeps counting).
Mode Hit(std::string_view site);

}  // namespace failpoint
}  // namespace ngd

#endif  // NGD_UTIL_FAILPOINT_H_
