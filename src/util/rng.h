// Deterministic pseudo-random number generation.
//
// All stochastic components of ngdlib (graph generators, update generators,
// rule generators) take an explicit seed and use this generator, so every
// experiment in bench/ and every test is exactly reproducible across runs
// and platforms. The core is xoroshiro128++ seeded via splitmix64.

#ifndef NGD_UTIL_RNG_H_
#define NGD_UTIL_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace ngd {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the 128-bit state.
    uint64_t x = seed;
    for (uint64_t* s : {&s0_, &s1_}) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      *s = z ^ (z >> 31);
    }
    if (s0_ == 0 && s1_ == 0) s0_ = 1;  // all-zero state is invalid
  }

  uint64_t NextUint64() {
    const uint64_t a = s0_;
    uint64_t b = s1_;
    const uint64_t result = Rotl(a + b, 17) + a;
    b ^= a;
    s0_ = Rotl(a, 49) ^ b ^ (b << 21);
    s1_ = Rotl(b, 28);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<int64_t>(NextUint64());  // full range
    return lo + static_cast<int64_t>(NextUint64() % range);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Uniformly picks an element from a non-empty vector.
  template <typename T>
  const T& PickFrom(const std::vector<T>& v) {
    assert(!v.empty());
    return v[static_cast<size_t>(NextUint64() % v.size())];
  }

  /// Zipf-like rank sample in [0, n): rank r drawn with weight
  /// proportional to 1/(r+1)^theta. Used to generate skewed label and
  /// degree distributions resembling real knowledge graphs; theta = 0
  /// degenerates to uniform.
  size_t Zipf(size_t n, double theta) {
    assert(n > 0);
    if (theta <= 0.0) return static_cast<size_t>(NextUint64() % n);
    if (n <= 64) {
      // Exact inverse-CDF scan for small n.
      double total = 0.0;
      for (size_t r = 0; r < n; ++r)
        total += 1.0 / std::pow(static_cast<double>(r + 1), theta);
      double u = UniformDouble() * total;
      for (size_t r = 0; r < n; ++r) {
        u -= 1.0 / std::pow(static_cast<double>(r + 1), theta);
        if (u <= 0.0) return r;
      }
      return n - 1;
    }
    // Approximate power-law transform for large n (clamped exponent keeps
    // the transform finite as theta -> 1).
    double t = theta >= 0.99 ? 0.99 : theta;
    double u = UniformDouble();
    double x = static_cast<double>(n) * std::pow(u, 1.0 / (1.0 - t));
    size_t r = static_cast<size_t>(x);
    return r >= n ? n - 1 : r;
  }

  /// Derives an independent child generator (for per-thread determinism).
  Rng Fork() { return Rng(NextUint64() ^ 0xd6e8feb86659fd93ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace ngd

#endif  // NGD_UTIL_RNG_H_
