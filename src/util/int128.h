// Shared __int128 helpers for the exact-arithmetic layers (Rational, the
// reasoning LinearSolver). One definition, so a future sign- or
// boundary-handling fix cannot drift between per-file copies.

#ifndef NGD_UTIL_INT128_H_
#define NGD_UTIL_INT128_H_

#include <string>

namespace ngd {

using Int128 = __int128;

/// gcd(|a|, |b|); gcd(x, 0) = x. Safe at the Int128 extremes the callers
/// produce (products of int64 values stay well below the 2^127 rim).
inline Int128 Gcd128(Int128 a, Int128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    Int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Exact decimal rendering (std::to_string has no Int128 overload, and
/// truncating casts would corrupt values past the int64 range).
inline std::string Int128ToString(Int128 v) {
  if (v == 0) return "0";
  const bool negative = v < 0;
  std::string digits;
  while (v != 0) {
    int d = static_cast<int>(negative ? -(v % 10) : (v % 10));
    digits.push_back(static_cast<char>('0' + d));
    v /= 10;
  }
  if (negative) digits.push_back('-');
  return std::string(digits.rbegin(), digits.rend());
}

}  // namespace ngd

#endif  // NGD_UTIL_INT128_H_
