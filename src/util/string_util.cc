#include "util/string_util.h"

#include <cctype>
#include <cstdlib>

namespace ngd {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::optional<int64_t> ParseInt64(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<int64_t>(v);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace ngd
