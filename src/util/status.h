// Status / StatusOr: the library-wide error model.
//
// ngdlib does not throw exceptions from library code; fallible operations
// return Status (or StatusOr<T> when they produce a value). This mirrors the
// RocksDB / Arrow idiom for database-engine code.

#ifndef NGD_UTIL_STATUS_H_
#define NGD_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace ngd {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruption,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
};

/// Result of a fallible operation: a code plus a human-readable message.
///
/// [[nodiscard]] at class scope: ANY function returning Status by value —
/// library, tests, tools — errors out under -Werror when the caller drops
/// the return. Ignoring a failure must be spelled `(void)expr;` with a
/// comment saying why the failure is ignorable.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

const char* StatusCodeName(StatusCode code);

/// A value-or-error wrapper. Holds T iff status().ok(). [[nodiscard]]
/// like Status: dropping a StatusOr drops the error with it.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status)  // NOLINT: implicit by design
      : status_(std::move(status)) {
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }
  StatusOr(T value)  // NOLINT: implicit by design
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define NGD_RETURN_IF_ERROR(expr)             \
  do {                                        \
    ::ngd::Status _st = (expr);               \
    if (!_st.ok()) return _st;                \
  } while (0)

#define NGD_MACRO_CONCAT_INNER(a, b) a##b
#define NGD_MACRO_CONCAT(a, b) NGD_MACRO_CONCAT_INNER(a, b)

#define NGD_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define NGD_ASSIGN_OR_RETURN(lhs, expr) \
  NGD_ASSIGN_OR_RETURN_IMPL(NGD_MACRO_CONCAT(_sor_, __LINE__), lhs, expr)

}  // namespace ngd

#endif  // NGD_UTIL_STATUS_H_
