// FNV-1a 64-bit: the checksum used by the binary snapshot sections
// (NGDSNAP1), the fragment container (NGDFRAG1), and the update journal
// (NGDWAL1). Not cryptographic — it detects torn writes and bit rot, not
// adversaries.

#ifndef NGD_UTIL_HASH_H_
#define NGD_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace ngd {

inline constexpr uint64_t kFnv1aOffset = 14695981039346656037ULL;
inline constexpr uint64_t kFnv1aPrime = 1099511628211ULL;

inline uint64_t Fnv1a64(const void* data, size_t n,
                        uint64_t h = kFnv1aOffset) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnv1aPrime;
  }
  return h;
}

}  // namespace ngd

#endif  // NGD_UTIL_HASH_H_
