// Clang thread-safety annotations and the capability-annotated mutex the
// concurrent core locks with.
//
// Under clang with -Wthread-safety (the NGD_LINT build), lock discipline
// becomes a compile-time property: a member declared
//
//   std::deque<T> items_ NGD_GUARDED_BY(mu_);
//
// cannot be read or written without holding mu_, a function annotated
// NGD_REQUIRES(mu_) cannot be called without it, and forgetting to release
// is a build error. Off clang (gcc, MSVC) every macro expands to nothing
// and Mutex/MutexLock degrade to plain std::mutex wrappers, so the
// annotations cost nothing anywhere and catch bugs where the analysis
// exists. See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html.
//
// Use ngd::Mutex + ngd::MutexLock (not std::mutex + std::lock_guard) for
// any newly guarded state: the std types carry no capability attributes,
// so the analysis cannot see them.

#ifndef NGD_UTIL_THREAD_ANNOTATIONS_H_
#define NGD_UTIL_THREAD_ANNOTATIONS_H_

#include <mutex>

#if defined(__clang__)
#define NGD_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define NGD_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op off clang
#endif

/// Declares a type to be a capability (lockable).
#define NGD_CAPABILITY(x) NGD_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII type whose lifetime is a critical section.
#define NGD_SCOPED_CAPABILITY \
  NGD_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Member data that may only be touched while `x` is held.
#define NGD_GUARDED_BY(x) NGD_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// is not).
#define NGD_PT_GUARDED_BY(x) \
  NGD_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// The function may only be called while holding the given capabilities.
#define NGD_REQUIRES(...) \
  NGD_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define NGD_ACQUIRE(...) \
  NGD_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// The function releases the capability (which must be held on entry).
#define NGD_RELEASE(...) \
  NGD_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `result`.
#define NGD_TRY_ACQUIRE(result, ...) \
  NGD_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(result, __VA_ARGS__))

/// The function must NOT be called while holding the capability (guards
/// against self-deadlock on non-reentrant mutexes).
#define NGD_EXCLUDES(...) \
  NGD_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations (deadlock prevention).
#define NGD_ACQUIRED_BEFORE(...) \
  NGD_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define NGD_ACQUIRED_AFTER(...) \
  NGD_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define NGD_RETURN_CAPABILITY(x) \
  NGD_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: the function is exempt from analysis. Every use must
/// carry a comment explaining why the discipline holds anyway.
#define NGD_NO_THREAD_SAFETY_ANALYSIS \
  NGD_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace ngd {

/// std::mutex with the capability attribute the analysis needs. Same
/// cost, same semantics; Lock/Unlock naming follows the annotation
/// vocabulary.
class NGD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() NGD_ACQUIRE() { mu_.lock(); }
  void Unlock() NGD_RELEASE() { mu_.unlock(); }
  bool TryLock() NGD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII critical section over ngd::Mutex (the annotated lock_guard).
class NGD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) NGD_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() NGD_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

}  // namespace ngd

#endif  // NGD_UTIL_THREAD_ANNOTATIONS_H_
