#include "util/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <string>
#include <unordered_map>

#include "util/thread_annotations.h"

namespace ngd {
namespace failpoint {
namespace {

struct SiteSpec {
  Mode mode = Mode::kNone;
  uint64_t skip = 0;  // hits of this site to let pass before firing
  uint64_t hits = 0;
};

struct Registry {
  Mutex mu;
  std::unordered_map<std::string, SiteSpec> sites NGD_GUARDED_BY(mu);
  Mode nth_mode NGD_GUARDED_BY(mu) = Mode::kNone;
  /// 1-based traversal index to fire at.
  uint64_t nth_target NGD_GUARDED_BY(mu) = 0;
  uint64_t traversals NGD_GUARDED_BY(mu) = 0;
};

std::atomic<bool> g_enabled{false};

Registry& Reg() {
  // Leaked process-lifetime singleton: no destructor-order hazard at exit.
  static Registry* r = new Registry();  // ngdlint:allow(naked-new)
  return *r;
}

bool ParseMode(std::string_view s, Mode* out) {
  if (s == "short") return *out = Mode::kShortWrite, true;
  if (s == "torn") return *out = Mode::kTornWrite, true;
  if (s == "bitflip") return *out = Mode::kBitFlip, true;
  if (s == "enospc") return *out = Mode::kEnospc, true;
  if (s == "syncfail") return *out = Mode::kSyncFail, true;
  return false;
}

}  // namespace

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kNone:
      return "none";
    case Mode::kShortWrite:
      return "short";
    case Mode::kTornWrite:
      return "torn";
    case Mode::kBitFlip:
      return "bitflip";
    case Mode::kEnospc:
      return "enospc";
    case Mode::kSyncFail:
      return "syncfail";
  }
  return "?";
}

void Enable(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Reset() {
  Registry& r = Reg();
  MutexLock lock(&r.mu);
  r.sites.clear();
  r.nth_mode = Mode::kNone;
  r.nth_target = 0;
  r.traversals = 0;
  g_enabled.store(false, std::memory_order_relaxed);
}

void ArmSite(std::string_view site, Mode mode, uint64_t skip) {
  Registry& r = Reg();
  {
    MutexLock lock(&r.mu);
    SiteSpec& spec = r.sites[std::string(site)];
    spec.mode = mode;
    spec.skip = skip;
    spec.hits = 0;
  }
  g_enabled.store(true, std::memory_order_relaxed);
}

void ArmNth(Mode mode, uint64_t n) {
  Registry& r = Reg();
  {
    MutexLock lock(&r.mu);
    r.nth_mode = mode;
    r.nth_target = n == 0 ? 1 : n;
    r.traversals = 0;
  }
  g_enabled.store(true, std::memory_order_relaxed);
}

uint64_t Traversals() {
  Registry& r = Reg();
  MutexLock lock(&r.mu);
  return r.traversals;
}

bool ArmFromEnv() {
  const char* env = std::getenv("NGD_FAILPOINTS");
  if (env == nullptr || *env == '\0') return false;
  std::string_view spec(env);
  bool armed_any = false;
  while (!spec.empty()) {
    size_t comma = spec.find(',');
    std::string_view entry =
        comma == std::string_view::npos ? spec : spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view()
                                           : spec.substr(comma + 1);
    size_t eq = entry.find('=');
    if (eq == std::string_view::npos) continue;
    std::string_view site = entry.substr(0, eq);
    std::string_view rhs = entry.substr(eq + 1);
    uint64_t count = 0;
    size_t colon = rhs.find(':');
    if (colon != std::string_view::npos) {
      count = std::strtoull(std::string(rhs.substr(colon + 1)).c_str(),
                            nullptr, 10);
      rhs = rhs.substr(0, colon);
    }
    Mode mode;
    if (!ParseMode(rhs, &mode) || site.empty()) continue;
    if (site == "*") {
      ArmNth(mode, count == 0 ? 1 : count);
    } else {
      // site=mode:N fires on the N-th hit of that site (first by default).
      ArmSite(site, mode, count == 0 ? 0 : count - 1);
    }
    armed_any = true;
  }
  return armed_any;
}

Mode Hit(std::string_view site) {
  if (!g_enabled.load(std::memory_order_relaxed)) return Mode::kNone;
  Registry& r = Reg();
  MutexLock lock(&r.mu);
  ++r.traversals;
  if (r.nth_mode != Mode::kNone && r.traversals == r.nth_target) {
    Mode m = r.nth_mode;
    r.nth_mode = Mode::kNone;
    return m;
  }
  auto it = r.sites.find(std::string(site));
  if (it == r.sites.end() || it->second.mode == Mode::kNone) {
    return Mode::kNone;
  }
  SiteSpec& spec = it->second;
  if (spec.hits++ < spec.skip) return Mode::kNone;
  Mode m = spec.mode;
  spec.mode = Mode::kNone;  // one-shot
  return m;
}

}  // namespace failpoint
}  // namespace ngd
