#!/usr/bin/env bash
# Tier-1 verification: build and test the full tree in the two
# configurations CI cares about:
#   1. Release (-DNDEBUG): the guards that must survive assert() removal.
#   2. Debug + ASan/UBSan: memory and signed-overflow regressions.
#
# Usage: ci/verify.sh [build-dir-prefix]
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_config() {
  local name="$1"
  shift
  local dir="${prefix}-${name}"
  echo "==== [${name}] configure ===="
  cmake -B "${dir}" -S . "$@"
  echo "==== [${name}] build ===="
  cmake --build "${dir}" -j "${jobs}"
  echo "==== [${name}] ctest ===="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_config release -DCMAKE_BUILD_TYPE=Release
# Project-invariant lint over the tree (failpoint arming, format-magic
# uniqueness, banned constructs, header hygiene) — the same binary the
# CI lint job runs, so regressions fail tier-1 locally first.
echo "==== ngdlint ===="
"${prefix}-release/ngdlint" .
# Reduced randomized sweeps under the sanitizers, matching the CI job
# (full sweeps run in the release configuration above).
(
  export NGD_DIFF_CASES=150 NGD_SIGMA_CASES=120 NGD_RECOVERY_CASES=3 \
    NGD_VIO_CASES=40 NGD_SPILL_CASES=6 NGD_SPILL_HEAVY=0
  run_config asan -DCMAKE_BUILD_TYPE=Debug -DNGD_SANITIZE=ON \
    -DNGD_BUILD_BENCHMARKS=OFF
)

echo "==== tier-1 verification passed ===="
